package plan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
)

// testCatalog implements Catalog over in-memory relations, the same way
// core.Env does but without the evaluation machinery, so every rewrite
// rule and cost path is testable in isolation.
type testCatalog struct {
	rels    map[string]*frel.Relation
	noStats bool
}

func newTestCatalog(rels ...*frel.Relation) *testCatalog {
	c := &testCatalog{rels: map[string]*frel.Relation{}}
	for _, r := range rels {
		c.rels[r.Schema.Name] = r
	}
	return c
}

func (c *testCatalog) BoundSchema(tr fsql.TableRef) (*frel.Schema, error) {
	r, ok := c.rels[strings.ToUpper(tr.Name)]
	if !ok {
		return nil, fmt.Errorf("plan test: unknown relation %q", tr.Name)
	}
	if b := strings.ToUpper(tr.Binding()); b != "" && b != r.Schema.Name {
		return r.Schema.WithName(b), nil
	}
	return r.Schema, nil
}

func (c *testCatalog) RelStats(tr fsql.TableRef) (*frel.TableStats, error) {
	if c.noStats {
		return nil, fmt.Errorf("plan test: statistics unavailable")
	}
	r, ok := c.rels[strings.ToUpper(tr.Name)]
	if !ok {
		return nil, fmt.Errorf("plan test: unknown relation %q", tr.Name)
	}
	return r.Stats(), nil
}

// numRel builds a relation of crisp numeric columns; column j of row i
// holds i mod mods[j], so cardinalities and distinct counts are exact.
func numRel(name string, rows int, attrs []string, mods []int) *frel.Relation {
	as := make([]frel.Attribute, len(attrs))
	for i, a := range attrs {
		as[i] = frel.Attribute{Name: a, Kind: frel.KindNumber}
	}
	r := frel.NewRelation(frel.NewSchema(name, as...))
	for i := 0; i < rows; i++ {
		vals := make([]frel.Value, len(attrs))
		for j := range attrs {
			vals[j] = frel.Crisp(float64(i % mods[j]))
		}
		r.Append(frel.NewTuple(1, vals...))
	}
	return r
}

// rstCatalog is the standard three-relation fixture: R(K, A, B),
// S(A, B), T(B, C), all crisp numeric.
func rstCatalog() *testCatalog {
	return newTestCatalog(
		numRel("R", 40, []string{"K", "A", "B"}, []int{40, 8, 20}),
		numRel("S", 30, []string{"A", "B"}, []int{8, 15}),
		numRel("T", 20, []string{"B", "C"}, []int{20, 5}),
	)
}

// planFor runs the full three-stage planner over sql.
func planFor(t *testing.T, cat Catalog, sql string, opts Options) *Plan {
	t.Helper()
	q, err := fsql.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	p, err := Build(q, cat)
	if err != nil {
		t.Fatalf("Build(%q): %v", sql, err)
	}
	if err := p.Rewrite(); err != nil {
		t.Fatalf("Rewrite(%q): %v", sql, err)
	}
	p.Estimate(opts)
	return p
}

func wantRules(t *testing.T, p *Plan, rules ...string) {
	t.Helper()
	if len(p.Rules) != len(rules) {
		t.Fatalf("rules = %v, want %v", p.Rules, rules)
	}
	for i, r := range rules {
		if p.Rules[i] != r {
			t.Fatalf("rules = %v, want %v", p.Rules, rules)
		}
	}
}

func TestBuildNestedForm(t *testing.T) {
	q, err := fsql.ParseQuery(`SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q, rstCatalog())
	if err != nil {
		t.Fatal(err)
	}
	ap, ok := p.Proj().Input.(*Apply)
	if !ok {
		t.Fatalf("body = %T, want *Apply", p.Proj().Input)
	}
	if ap.Pred.Kind != fsql.PredIn {
		t.Errorf("apply pred kind = %v", ap.Pred.Kind)
	}
	if j, ok := ap.Input.(*Join); !ok || len(j.Inputs) != 1 {
		t.Errorf("apply input = %#v, want 1-scan join", ap.Input)
	}
	if j, ok := ap.Body.(*Join); !ok || len(j.Inputs) != 1 {
		t.Errorf("apply body = %#v, want 1-scan join", ap.Body)
	}
}

func TestBuildUnknownRelation(t *testing.T) {
	q, err := fsql.ParseQuery(`SELECT X.A FROM X`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(q, rstCatalog()); err == nil {
		t.Fatal("Build of unknown relation succeeded")
	}
}

func TestRuleUnnestInTypeN(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)`, Options{})
	if p.Strategy != StrategyChain {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	wantRules(t, p, RuleUnnestIn)
	j := p.Proj().Input.(*Join)
	if len(j.Inputs) != 2 {
		t.Fatalf("join has %d inputs, want 2", len(j.Inputs))
	}
	if len(j.JoinPreds) != 1 {
		t.Fatalf("join preds = %v, want the linking equality", j.JoinPreds)
	}
}

func TestRuleUnnestInTypeJ(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A)`, Options{})
	if p.Strategy != StrategyChain {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	wantRules(t, p, RuleUnnestIn)
	j := p.Proj().Input.(*Join)
	// Linking equality R.B = S.B plus the correlation S.A = R.A.
	if len(j.JoinPreds) != 2 {
		t.Fatalf("join preds = %v, want linking + correlation", j.JoinPreds)
	}
}

func TestRuleUnnestAny(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B > ANY (SELECT S.B FROM S WHERE S.A = R.A)`, Options{})
	if p.Strategy != StrategyChain {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	wantRules(t, p, RuleUnnestAny)
	// The linking predicate carries the quantifier's comparison operator.
	j := p.Proj().Input.(*Join)
	found := false
	for _, h := range j.JoinPreds {
		if h.Pred.Op == fuzzy.OpGt {
			found = true
		}
	}
	if !found {
		t.Errorf("no > linking predicate in %v", j.JoinPreds)
	}
}

func TestRuleUnnestExists(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE EXISTS (SELECT S.B FROM S WHERE S.A = R.A)`, Options{})
	if p.Strategy != StrategyChain {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	wantRules(t, p, RuleUnnestExists)
	// EXISTS adds no linking predicate: the correlation alone joins.
	j := p.Proj().Input.(*Join)
	if len(j.JoinPreds) != 1 {
		t.Fatalf("join preds = %v, want the correlation only", j.JoinPreds)
	}
}

func TestRuleUnnestNotIn(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B NOT IN (SELECT S.B FROM S WHERE S.A = R.A)`, Options{})
	if p.Strategy != StrategyAntiJoin {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	wantRules(t, p, RuleUnnestNotIn)
	a := p.Proj().Input.(*AntiJoin)
	if a.Mode != AntiNotIn || !a.HasLink {
		t.Errorf("mode = %v hasLink = %v", a.Mode, a.HasLink)
	}
	if !a.RangeFound {
		t.Error("linking equality should provide the merge range")
	}
	if len(a.Corr) != 1 {
		t.Errorf("correlations = %v", a.Corr)
	}
}

func TestRuleUnnestAll(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B > ALL (SELECT S.B FROM S WHERE S.A = R.A)`, Options{})
	if p.Strategy != StrategyAllAnti {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	wantRules(t, p, RuleUnnestAll)
	a := p.Proj().Input.(*AntiJoin)
	if a.Mode != AntiAll || !a.HasLink {
		t.Errorf("mode = %v hasLink = %v", a.Mode, a.HasLink)
	}
	if a.Link.Op != fuzzy.OpGt {
		t.Errorf("link op = %v, want >", a.Link.Op)
	}
	// The equality correlation, not the > link, is the merge range.
	if !a.RangeFound || a.RangeOuter != "R.A" || a.RangeInner != "S.A" {
		t.Errorf("range = %q/%q found=%v", a.RangeOuter, a.RangeInner, a.RangeFound)
	}
}

func TestRuleUnnestNotExists(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE NOT EXISTS (SELECT S.B FROM S WHERE S.A = R.A)`, Options{})
	if p.Strategy != StrategyAntiJoin {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	wantRules(t, p, RuleUnnestNotExists)
	a := p.Proj().Input.(*AntiJoin)
	if a.Mode != AntiNotExists || a.HasLink {
		t.Errorf("mode = %v hasLink = %v", a.Mode, a.HasLink)
	}
}

func TestRuleUnnestScalarAgg(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE S.A = R.A)`, Options{})
	if p.Strategy != StrategyGroupAgg {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	wantRules(t, p, RuleUnnestScalarAgg)
	g := p.Proj().Input.(*GroupAgg)
	if g.URef != "R.A" || g.VRef != "S.A" || g.Agg != fuzzy.AggAvg {
		t.Errorf("group-agg = %+v", g)
	}
}

func TestRuleUnnestScalarAggCount(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.K >= (SELECT COUNT(S.B) FROM S WHERE S.A = R.A)`, Options{})
	if p.Strategy != StrategyGroupAgg {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	if !strings.Contains(p.Note, "COUNT") {
		t.Errorf("note = %q, want the COUNT' variant", p.Note)
	}
}

func TestRuleFoldUncorrelated(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S)`, Options{})
	if p.Strategy != StrategyUncorrelated {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	wantRules(t, p, RuleFoldUncorrelated)
	u := p.Proj().Input.(*UncorrSub)
	if u.Agg != fuzzy.AggAvg || u.YRef != "R.B" {
		t.Errorf("uncorr = %+v", u)
	}
}

func TestChainThreeLevels(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B IN
		   (SELECT S.B FROM S WHERE S.A = R.A AND S.B IN
		     (SELECT T.B FROM T WHERE T.C = S.A))`, Options{})
	if p.Strategy != StrategyChain {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	wantRules(t, p, RuleUnnestIn, RuleUnnestIn)
	j := p.Proj().Input.(*Join)
	if len(j.Inputs) != 3 {
		t.Fatalf("flattened join has %d inputs, want 3", len(j.Inputs))
	}
	if len(j.Order) != 3 || len(j.Steps) != 2 {
		t.Fatalf("order %v steps %d", j.Order, len(j.Steps))
	}
}

func TestMultipleSubqueriesFlatten(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S) AND EXISTS (SELECT T.B FROM T WHERE T.B = R.B)`,
		Options{})
	if p.Strategy != StrategyChain {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	wantRules(t, p, RuleUnnestIn, RuleUnnestExists)
}

func TestNaiveFallbackAggregateOuter(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT COUNT(R.K) FROM R WHERE R.B IN (SELECT S.B FROM S)`, Options{})
	if p.Strategy != StrategyNaive {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	if len(p.Rules) != 0 {
		t.Errorf("naive fallback recorded rules %v", p.Rules)
	}
	if p.Note == "" {
		t.Error("naive fallback has no reason")
	}
}

func TestNaiveFallbackReusedBinding(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B IN (SELECT R.B FROM R)`, Options{})
	if p.Strategy != StrategyNaive {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	if !strings.Contains(p.Note, "reused") {
		t.Errorf("note = %q, want a reused-binding reason", p.Note)
	}
}

func TestNaiveFallbackMultiRelationAnti(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R, T WHERE R.B NOT IN (SELECT S.B FROM S)`, Options{})
	if p.Strategy != StrategyNaive {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	if !strings.Contains(p.Note, "single-relation") {
		t.Errorf("note = %q", p.Note)
	}
}

func TestNaiveFallbackSubqueryShape(t *testing.T) {
	// An inner ORDER BY/LIMIT changes the subquery's answer set, so no
	// rewrite may fire.
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S ORDER BY D DESC LIMIT 2)`, Options{})
	if p.Strategy != StrategyNaive {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
}

func TestFlatQueryNoRules(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R WHERE R.A = 3`, Options{})
	if p.Strategy != StrategyFlat {
		t.Fatalf("strategy = %v (%s)", p.Strategy, p.Note)
	}
	if len(p.Rules) != 0 {
		t.Errorf("flat query applied rules %v", p.Rules)
	}
}

func TestShapeOnThresholdNode(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WITH D >= 0.5 ORDER BY D DESC LIMIT 3`, Options{})
	s := p.Root.Shape
	if s.With != 0.5 || s.OrderBy != "D" || !s.OrderDesc || !s.HasLimit || s.Limit != 3 {
		t.Errorf("shape = %+v", s)
	}
}
