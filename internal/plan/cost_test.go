package plan

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fsql"
)

func TestFilterSelectivityFromDistinct(t *testing.T) {
	// R.A takes 8 distinct values over 40 rows; the equality filter
	// should keep 1/8 of them.
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R WHERE R.A = 3`, Options{})
	f, ok := p.Proj().Input.(*Join).Inputs[0].(*Filter)
	if !ok {
		t.Fatalf("input is %T, want a pushed-down filter", p.Proj().Input.(*Join).Inputs[0])
	}
	if got, want := f.Est().Rows, 5.0; math.Abs(got-want) > 0.5 {
		t.Errorf("filter rows = %g, want about %g", got, want)
	}
}

func TestScanCardinalityFromStats(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R`, Options{})
	sc := p.Proj().Input.(*Join).Inputs[0].(*Scan)
	if sc.Est().Rows != 40 {
		t.Errorf("scan rows = %g, want 40 (from statistics)", sc.Est().Rows)
	}
}

func TestScanCardinalityWithoutStats(t *testing.T) {
	cat := rstCatalog()
	cat.noStats = true
	p := planFor(t, cat, `SELECT R.K FROM R`, Options{})
	sc := p.Proj().Input.(*Join).Inputs[0].(*Scan)
	if sc.Est().Rows != defaultRows {
		t.Errorf("scan rows = %g, want the %g fallback", sc.Est().Rows, defaultRows)
	}
}

func TestMergeJoinChosenForEquality(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R, S WHERE R.A = S.A`, Options{})
	j := p.Proj().Input.(*Join)
	if len(j.Steps) != 1 {
		t.Fatalf("steps = %v", j.Steps)
	}
	st := j.Steps[0]
	if !st.Merge {
		t.Fatal("equality join step did not choose the merge-join")
	}
	if st.LeftAttr == "" || st.RightAttr == "" {
		t.Errorf("merge attrs = %q/%q", st.LeftAttr, st.RightAttr)
	}
	if st.Fanout <= 0 {
		t.Errorf("fanout = %g, want positive statistics-backed estimate", st.Fanout)
	}
}

func TestNestedLoopForNonEquality(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R, S WHERE R.A < S.A`, Options{})
	j := p.Proj().Input.(*Join)
	st := j.Steps[0]
	if st.Merge || st.MergePred >= 0 {
		t.Fatalf("non-equality predicate chose merge: %+v", st)
	}
	if len(st.Extras) != 1 {
		t.Errorf("extras = %v, want the < predicate", st.Extras)
	}
}

func TestJoinOrderAvoidsCrossProduct(t *testing.T) {
	// FROM R, T, S with edges R-S and T-S: the syntactic order starts
	// with the cross product R x T; the DP must place S second.
	cat := rstCatalog()
	sql := `SELECT R.K FROM R, T, S WHERE R.A = S.A AND T.B = S.B`
	p := planFor(t, cat, sql, Options{})
	j := p.Proj().Input.(*Join)
	if len(j.Order) != 3 {
		t.Fatalf("order = %v", j.Order)
	}
	// Relation indexes follow FROM order: R=0, T=1, S=2.
	if j.Order[0] != 2 && j.Order[1] != 2 {
		t.Errorf("order %v joins R and T before S (cross product)", j.Order)
	}

	// The ablation switch must keep the syntactic order.
	p = planFor(t, cat, sql, Options{DisableJoinReorder: true})
	j = p.Proj().Input.(*Join)
	for i, want := range []int{0, 1, 2} {
		if j.Order[i] != want {
			t.Fatalf("DisableJoinReorder order = %v, want [0 1 2]", j.Order)
		}
	}
}

func TestNaiveCostDominatesUnnested(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A)`, Options{})
	if p.NaiveCost <= p.Root.Est().Cost {
		t.Errorf("naive cost %g not above plan cost %g", p.NaiveCost, p.Root.Est().Cost)
	}
}

func TestNaiveStrategyStillEstimated(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT COUNT(R.K) FROM R WHERE R.B IN (SELECT S.B FROM S)`, Options{})
	if p.Strategy != StrategyNaive {
		t.Fatalf("strategy = %v", p.Strategy)
	}
	if p.Root.Est().Cost <= 0 {
		t.Errorf("naive tree cost = %g, want positive", p.Root.Est().Cost)
	}
}

func TestJoinErrSurfacedAtEstimate(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R, S WHERE R.Q = S.A`, Options{})
	j := p.Proj().Input.(*Join)
	if j.Err == nil || !strings.Contains(j.Err.Error(), "cannot resolve") {
		t.Errorf("join err = %v, want an unresolvable-reference error", j.Err)
	}
}

func TestAmbiguousReferenceRejected(t *testing.T) {
	// Unqualified B resolves in both R and S.
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R, S WHERE B = 1`, Options{})
	j := p.Proj().Input.(*Join)
	if j.Err == nil || !strings.Contains(j.Err.Error(), "ambiguous") {
		t.Errorf("join err = %v, want an ambiguity error", j.Err)
	}
}

func TestAntiJoinEstimates(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B NOT IN (SELECT S.B FROM S WHERE S.A = R.A)`, Options{})
	a := p.Proj().Input.(*AntiJoin)
	// The anti-join keeps every outer tuple (inner matches only lower
	// their degrees).
	if a.Est().Rows != 40 {
		t.Errorf("anti-join rows = %g, want 40", a.Est().Rows)
	}
	if a.Est().Cost <= 0 {
		t.Errorf("anti-join cost = %g", a.Est().Cost)
	}
}

func TestEdgeFanoutCrispColumns(t *testing.T) {
	cat := rstCatalog()
	q, err := fsql.ParseQuery(`SELECT R.K FROM R, S WHERE R.A = S.A`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Rewrite(); err != nil {
		t.Fatal(err)
	}
	p.Estimate(Options{})
	j := p.Proj().Input.(*Join)
	// Crisp equi-join estimate: sel = 1/max(distinct) = 1/8, fanout =
	// sel * max(rows) = 40/8 = 5.
	if got := j.Steps[0].Fanout; math.Abs(got-5) > 0.5 {
		t.Errorf("fanout = %g, want about 5", got)
	}
}

func TestLinesRendering(t *testing.T) {
	p := planFor(t, rstCatalog(),
		`SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A)`, Options{})
	out := strings.Join(p.Lines(), "\n")
	for _, want := range []string{"rules: unnest-in", "cost:", "threshold", "project", "join", "scan R", "scan S"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered plan missing %q:\n%s", want, out)
		}
	}
	// Deterministic rendering: two renders agree line for line.
	again := strings.Join(p.Lines(), "\n")
	if out != again {
		t.Error("plan rendering is not deterministic")
	}
}
