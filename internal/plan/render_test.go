package plan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
)

// wantNaive asserts the plan fell back to the naive strategy for the
// given reason (substring match on Note).
func wantNaive(t *testing.T, p *Plan, reason string) {
	t.Helper()
	if p.Strategy != StrategyNaive {
		t.Fatalf("strategy = %v (note %q), want naive", p.Strategy, p.Note)
	}
	if !strings.Contains(p.Note, reason) {
		t.Fatalf("note = %q, want it to mention %q", p.Note, reason)
	}
	if len(p.Rules) != 0 {
		t.Fatalf("naive plan reports rules %v", p.Rules)
	}
}

func TestStrategyStrings(t *testing.T) {
	cases := map[Strategy]string{
		StrategyFlat:         "flat",
		StrategyChain:        "chain-join",
		StrategyAntiJoin:     "jx-anti-join",
		StrategyGroupAgg:     "ja-group-aggregate-join",
		StrategyAllAnti:      "jall-anti-join",
		StrategyUncorrelated: "uncorrelated-subquery",
		StrategyNaive:        "naive-nested-loop",
		Strategy(99):         "Strategy(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestAntiModeStrings(t *testing.T) {
	cases := map[AntiMode]string{
		AntiNotIn:     "not-in",
		AntiAll:       "all",
		AntiNotExists: "not-exists",
		AntiMode(7):   "AntiMode(7)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

// TestNodeInterfaces walks every IR node type through the Node interface:
// Kind is non-empty, Est is addressable, and Children returns the inputs
// wired in.
func TestNodeInterfaces(t *testing.T) {
	scan := &Scan{}
	nodes := []struct {
		nd       Node
		kind     string
		children int
	}{
		{scan, "scan", 0},
		{&Filter{Input: scan}, "filter", 1},
		{&Join{Inputs: []Node{scan, scan}}, "join", 2},
		{&Apply{Input: scan, Body: scan}, "apply", 2},
		{&AllQuantifier{Input: scan, Body: scan}, "all-quantifier", 2},
		{&AntiJoin{Outer: scan, Inner: scan}, "anti-join", 2},
		{&GroupAgg{Outer: scan, Inner: scan}, "group-agg-join", 2},
		{&UncorrSub{Outer: scan}, "uncorrelated-agg", 1},
		{&Project{Input: scan}, "project", 1},
		{&Threshold{Input: scan}, "threshold", 1},
	}
	for _, c := range nodes {
		if got := c.nd.Kind(); got != c.kind {
			t.Errorf("Kind() = %q, want %q", got, c.kind)
		}
		if got := len(c.nd.Children()); got != c.children {
			t.Errorf("%s: %d children, want %d", c.kind, got, c.children)
		}
		e := c.nd.Est()
		if e == nil {
			t.Fatalf("%s: nil Est", c.kind)
		}
		e.Rows = 7 // must be mutable
		if c.nd.Est().Rows != 7 {
			t.Errorf("%s: Est not addressable", c.kind)
		}
	}
}

func TestPredKindWords(t *testing.T) {
	cases := map[fsql.PredKind]string{
		fsql.PredIn:        "in",
		fsql.PredNotIn:     "not-in",
		fsql.PredQuant:     "quantifier",
		fsql.PredScalarSub: "scalar-subquery",
		fsql.PredExists:    "exists",
		fsql.PredNotExists: "not-exists",
		fsql.PredNear:      "near",
		fsql.PredCompare:   "compare",
	}
	for k, want := range cases {
		if got := predKindWord(fsql.Predicate{Kind: k}); got != want {
			t.Errorf("predKindWord(%d) = %q, want %q", int(k), got, want)
		}
	}
}

// renderedContains asserts every want string appears in the plan's
// rendered Lines.
func renderedContains(t *testing.T, p *Plan, wants ...string) {
	t.Helper()
	text := strings.Join(p.Lines(), "\n")
	for _, w := range wants {
		if !strings.Contains(text, w) {
			t.Errorf("rendered plan missing %q:\n%s", w, text)
		}
	}
}

func TestRenderThresholdParts(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R WITH D >= 0.5 ORDER BY D DESC LIMIT 3`, Options{})
	renderedContains(t, p, "threshold with>=0.5, order D desc, limit 3")
}

// TestRenderNaiveApplyTree exercises the apply-form rendering and the
// naive estimator: an outer GROUPBY forces the fallback, leaving the IN
// subquery as an Apply node and the projection grouped.
func TestRenderNaiveApplyTree(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.A FROM R WHERE R.B IN (SELECT S.B FROM S) GROUPBY R.A`, Options{})
	wantNaive(t, p, "GROUPBY")
	renderedContains(t, p, "apply in", "project group by R.A", "rules: (none)")
	if p.Root.Est().Cost <= 0 {
		t.Errorf("naive plan not costed: %+v", *p.Root.Est())
	}
}

// TestRenderNaiveAllQuantifier renders the ALL node kept in nested form.
func TestRenderNaiveAllQuantifier(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.A FROM R WHERE R.B > ALL (SELECT S.B FROM S) GROUPBY R.A`, Options{})
	wantNaive(t, p, "GROUPBY")
	renderedContains(t, p, "all-quantifier all")
}

func TestRenderAntiJoinMerge(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R WHERE R.B NOT IN (SELECT S.B FROM S WHERE S.A = R.A)`, Options{})
	if p.Strategy != StrategyAntiJoin {
		t.Fatalf("strategy = %v", p.Strategy)
	}
	renderedContains(t, p, "anti-join [not-in] merge R.B = S.B")
}

// TestRenderNotExistsNestedLoop: a NOT EXISTS whose only correlation is a
// non-equality comparison gets no merge range attribute, so the anti-join
// renders (and is costed) as a nested loop.
func TestRenderNotExistsNestedLoop(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R WHERE NOT EXISTS (SELECT S.A FROM S WHERE S.B <= R.B)`, Options{})
	if p.Strategy != StrategyAntiJoin {
		t.Fatalf("strategy = %v (note %q)", p.Strategy, p.Note)
	}
	wantRules(t, p, RuleUnnestNotExists)
	aj, ok := p.Proj().Input.(*AntiJoin)
	if !ok {
		t.Fatalf("body = %T", p.Proj().Input)
	}
	if aj.RangeFound || aj.HasLink {
		t.Errorf("NOT EXISTS anti-join: RangeFound=%v HasLink=%v, want false/false", aj.RangeFound, aj.HasLink)
	}
	renderedContains(t, p, "anti-join [not-exists] nested-loop")
}

func TestRenderGroupAggAndUncorr(t *testing.T) {
	ja := planFor(t, rstCatalog(), `SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE S.A = R.A)`, Options{})
	renderedContains(t, ja, "group-agg-join", "by R.A")
	un := planFor(t, rstCatalog(), `SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S)`, Options{})
	renderedContains(t, un, "uncorrelated-agg", "folded vs R.B")
}

// TestRenderJoinError: an unresolvable reference is recorded on the Join
// node and rendered, not raised at planning time.
func TestRenderJoinError(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R, S WHERE R.K = Q.Z`, Options{})
	j, ok := p.Proj().Input.(*Join)
	if !ok {
		t.Fatalf("body = %T", p.Proj().Input)
	}
	if j.Err == nil {
		t.Fatal("unresolvable reference did not set Join.Err")
	}
	renderedContains(t, p, `join error: core: cannot resolve reference "Q.Z"`)
}

// leafEst's non-Scan-input branch and its default arm are unreachable
// through Build (filters only ever wrap scans) but guard future rule
// changes; exercise them directly.
func TestLeafEstFallbacks(t *testing.T) {
	cat := rstCatalog()
	p := planFor(t, cat, `SELECT R.K FROM R`, Options{})
	scan := p.Proj().Input.(*Join).Inputs[0].(*Scan)
	inner := &Filter{Input: scan, Preds: []fsql.Predicate{{Kind: fsql.PredCompare}}}
	outer := &Filter{Input: inner, Preds: []fsql.Predicate{{Kind: fsql.PredCompare}}}
	rows := p.leafEst(outer)
	if rows <= 0 || rows >= 40 {
		t.Errorf("stacked-filter estimate = %g, want in (0, 40)", rows)
	}
	if got := p.leafEst(&Project{}); got != defaultRows {
		t.Errorf("leafEst(non-leaf) = %g, want defaultRows", got)
	}
}

// --- anti-join (JX/JALL/NOT EXISTS) fallback shapes ---

func TestAntiFallbacks(t *testing.T) {
	cases := []struct {
		sql, reason string
	}{
		{`SELECT R.K FROM R, T WHERE R.B NOT IN (SELECT S.B FROM S)`,
			"single-relation blocks"},
		{`SELECT R.K FROM R WHERE R.B NOT IN (SELECT S.B FROM S WITH D >= 0.5)`,
			"WITH threshold"},
		{`SELECT R.K FROM R WHERE R.B NOT IN (SELECT S.B FROM S LIMIT 3)`,
			"ORDER BY/LIMIT"},
		{`SELECT R.K FROM R WHERE R.B NOT IN (SELECT S.B FROM S GROUPBY S.B)`,
			"GROUPBY/HAVING"},
		{`SELECT R.K FROM R WHERE R.B NOT IN (SELECT S.B FROM S WHERE S.A IN (SELECT T.B FROM T))`,
			"subquery is itself nested"},
		{`SELECT R.K FROM R WHERE R.B NOT IN (SELECT S.B FROM S WHERE S.A = X.Q)`,
			"cannot resolve"},
	}
	for _, c := range cases {
		p := planFor(t, rstCatalog(), c.sql, Options{})
		wantNaive(t, p, c.reason)
	}
}

// --- scalar-aggregate (JA) fallback shapes and NEAR folding ---

// strCatalog extends the standard fixture with W(G STRING, A NUMBER) for
// the non-numeric-correlation check.
func strCatalog() *testCatalog {
	w := frel.NewRelation(frel.NewSchema("W",
		frel.Attribute{Name: "G", Kind: frel.KindString},
		frel.Attribute{Name: "A", Kind: frel.KindNumber}))
	for i := 0; i < 5; i++ {
		w.Append(frel.NewTuple(1, frel.Str(fmt.Sprintf("g%d", i)), frel.Crisp(float64(i))))
	}
	c := rstCatalog()
	c.rels["W"] = w
	return c
}

func TestScalarAggFallbacks(t *testing.T) {
	cases := []struct {
		sql, reason string
	}{
		{`SELECT R.K FROM R, T WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE S.A = R.A)`,
			"single-relation blocks"},
		{`SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S GROUPBY S.A)`,
			"GROUPBY/HAVING/WITH/ORDER/LIMIT"},
		{`SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE S.B IN (SELECT T.B FROM T))`,
			"itself nested"},
		{`SELECT R.K FROM R WHERE S.A >= (SELECT AVG(S.B) FROM S WHERE S.A = R.A)`,
			"compared value is not an outer attribute"},
		{`SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE S.A = R.A AND S.B = R.B)`,
			"exactly one correlation"},
		{`SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE R.B = 5)`,
			"must compare two attributes"},
		{`SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE R.A = R.B)`,
			"does not link inner and outer"},
		{`SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE S.B NEAR R.A WITHIN 2)`,
			"NEAR correlation on the aggregated attribute"},
	}
	for _, c := range cases {
		p := planFor(t, strCatalog(), c.sql, Options{})
		wantNaive(t, p, c.reason)
	}
}

func TestScalarAggNonNumericCorrelation(t *testing.T) {
	p := planFor(t, strCatalog(), `SELECT R.K FROM R WHERE R.B >= (SELECT AVG(W.A) FROM W WHERE W.G = R.K)`, Options{})
	wantNaive(t, p, "must be numeric")
}

// TestScalarAggNearFolds: a NEAR correlation folds into equality with the
// tolerance shifted onto the inner attribute, in both orientations.
func TestScalarAggNearFolds(t *testing.T) {
	for _, sql := range []string{
		`SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE S.A NEAR R.A WITHIN 2)`,
		`SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE R.A NEAR S.A WITHIN 2)`,
	} {
		p := planFor(t, rstCatalog(), sql, Options{})
		if p.Strategy != StrategyGroupAgg {
			t.Fatalf("%s: strategy = %v (note %q)", sql, p.Strategy, p.Note)
		}
		g := p.Proj().Input.(*GroupAgg)
		if !g.IsNear || g.Op2 != fuzzy.OpEq {
			t.Errorf("%s: IsNear=%v Op2=%v, want folded equality", sql, g.IsNear, g.Op2)
		}
		if g.VRef != "S.A" || g.URef != "R.A" {
			t.Errorf("%s: correlation %s/%s, want S.A/R.A", sql, g.VRef, g.URef)
		}
	}
}

// TestScalarAggFlippedCorrelation: a correlation written outer-first
// normalizes by flipping the comparison operator.
func TestScalarAggFlippedCorrelation(t *testing.T) {
	p := planFor(t, rstCatalog(), `SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE R.A <= S.A)`, Options{})
	if p.Strategy != StrategyGroupAgg {
		t.Fatalf("strategy = %v (note %q)", p.Strategy, p.Note)
	}
	g := p.Proj().Input.(*GroupAgg)
	if g.VRef != "S.A" || g.URef != "R.A" {
		t.Errorf("correlation %s/%s, want S.A/R.A", g.VRef, g.URef)
	}
	if g.Op2 == fuzzy.OpLe {
		t.Error("correlation operator was not flipped when normalizing")
	}
}

// TestScalarSubqueryWithoutAggregate: a scalar subquery selecting a plain
// attribute is malformed (no evaluator could run it) and errors out of
// Rewrite instead of falling back.
func TestScalarSubqueryWithoutAggregate(t *testing.T) {
	q, err := fsql.ParseQuery(`SELECT R.K FROM R WHERE R.B >= (SELECT S.B FROM S WHERE S.A = R.A)`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q, rstCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Rewrite(); err == nil {
		t.Fatal("Rewrite accepted a scalar subquery without an aggregate")
	}
}
