package plan

import (
	"fmt"
	"math"

	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
)

// The cost model's constants. Costs are abstract units — one unit is
// roughly one tuple touched — used only to compare alternatives, so only
// their ratios matter.
const (
	// cDeg is the cost of one degree (membership) evaluation relative to
	// touching a tuple; nested-loop joins and naive nested evaluation pay
	// it per tuple pair.
	cDeg = 4.0

	// cSortAmort scales the n·log2(n) sort term: the engine's cached sort
	// orders (Section 9 reuses sorted relations across operators and
	// queries) amortize most sorts, so a full sort is charged at a
	// quarter of its nominal cost.
	cSortAmort = 0.25

	// fallbackFanout is the per-tuple join fanout assumed when no
	// statistics are available — the paper's constant-fanout assumption
	// (Section 3). With statistics, fanouts come from support widths and
	// distinct counts instead.
	fallbackFanout = 4.0

	// defaultRows is the cardinality assumed for relations without
	// statistics.
	defaultRows = 1000.0

	// minFanout keeps edge fanouts positive so join chains still look
	// connected to the ordering DP.
	minFanout = 0.1

	// fallbackSel is the selectivity assumed for predicates the
	// statistics cannot size (non-equality comparisons, expression
	// shapes outside the model).
	fallbackSel = 1.0 / 3.0
)

func log2n(x float64) float64 { return math.Log2(x + 2) }

// Estimate runs the cost model over the rewritten plan: it sizes every
// node from the catalog's statistics, homes and pushes down the join
// predicates, chooses the join order and the per-step algorithm, and
// computes the naive-evaluation cost for comparison. It never fails:
// planning errors are recorded on the Join node and surfaced when the
// plan is executed, matching the nested evaluator's error timing.
func (p *Plan) Estimate(opts Options) {
	p.NaiveCost = p.naiveCost(p.Query)
	proj := p.Proj()
	switch body := proj.Input.(type) {
	case *Join:
		p.estimateJoin(body, opts)
	case *AntiJoin:
		p.estimateAnti(body)
	case *GroupAgg:
		p.estimateGroupAgg(body)
	case *UncorrSub:
		p.estimateUncorr(body)
	default:
		p.estimateDefault(body)
	}
	in := proj.Input.Est()
	proj.est = Est{Rows: in.Rows, Cost: in.Cost + in.Rows}
	p.Root.est = Est{Rows: proj.est.Rows, Cost: proj.est.Cost + proj.est.Rows}
}

// hasOrderIndex reports whether nd is a plain base-relation scan whose
// catalog maintains a fresh persistent order index on attr. Filtered
// inputs never qualify — a filtered stream's sorted order cannot be read
// off the base relation's index — matching the execution path, which only
// serves unfiltered scans from indexes.
func (p *Plan) hasOrderIndex(nd Node, attr string) bool {
	sc, ok := nd.(*Scan)
	if !ok {
		return false
	}
	oi, ok := p.cat.(OrderIndexes)
	if !ok {
		return false
	}
	return oi.HasOrderIndex(sc.Table, attr)
}

// relRows returns the statistics and cardinality of a base relation
// (defaultRows when statistics are unavailable).
func (p *Plan) relRows(tr fsql.TableRef) (*frel.TableStats, float64) {
	if ts, err := p.cat.RelStats(tr); err == nil && ts != nil {
		return ts, float64(ts.Rows)
	}
	return nil, defaultRows
}

// naiveCost estimates the nested-loop evaluation of the query as written:
// the block's cross product pays one degree evaluation per predicate, and
// each subquery is re-evaluated per outer tuple (the quadratic behavior
// Section 3 analyzes and the rewrites avoid).
func (p *Plan) naiveCost(q *fsql.Select) float64 {
	cross := 1.0
	for _, tr := range q.From {
		_, rows := p.relRows(tr)
		cross *= rows
	}
	cost := cross * cDeg * math.Max(1, float64(len(q.Where)))
	for _, pr := range q.Where {
		if pr.Sub != nil {
			cost += cross * p.naiveCost(pr.Sub)
		}
	}
	return cost
}

// filterSelectivity sizes one pushed-down single-relation predicate: an
// equality against a literal keeps 1/distinct of the rows; every other
// shape falls back to fallbackSel.
func filterSelectivity(pr fsql.Predicate, schema *frel.Schema, ts *frel.TableStats) float64 {
	if ts == nil {
		return fallbackSel
	}
	if pr.Kind == fsql.PredCompare && pr.Op == fuzzy.OpEq {
		ref := ""
		switch {
		case pr.Left.Kind == fsql.OpdRef && pr.Right.Kind != fsql.OpdRef:
			ref = pr.Left.Ref
		case pr.Right.Kind == fsql.OpdRef && pr.Left.Kind != fsql.OpdRef:
			ref = pr.Right.Ref
		}
		if ref != "" {
			if i, err := schema.Resolve(ref); err == nil {
				if d := ts.Distinct(i); d >= 1 {
					return 1 / d
				}
			}
		}
	}
	return fallbackSel
}

// edgeFanout estimates, for an equality/NEAR join edge, how many tuples
// of the larger side an average tuple of the smaller side joins. Two
// fuzzy supports match when they overlap (possibly within the NEAR
// tolerance), so the width-based selectivity is the average combined
// support width over the union span of the two columns; for crisp
// columns that term vanishes and the distinct-count bound 1/max(distinct)
// takes over (the classic equi-join estimate).
func edgeFanout(h HomedPred, schemas []*frel.Schema, stats []*frel.TableStats, rows []float64) float64 {
	a, b := h.Rels[0], h.Rels[1]
	if stats[a] == nil || stats[b] == nil {
		return fallbackFanout
	}
	ai, bi := -1, -1
	for _, opd := range []fsql.Operand{h.Pred.Left, h.Pred.Right} {
		if opd.Kind != fsql.OpdRef {
			continue
		}
		if schemas[a].Has(opd.Ref) {
			ai, _ = schemas[a].Resolve(opd.Ref)
		} else if schemas[b].Has(opd.Ref) {
			bi, _ = schemas[b].Resolve(opd.Ref)
		}
	}
	if ai < 0 || bi < 0 {
		return fallbackFanout
	}
	sa, sb := &stats[a].Attrs[ai], &stats[b].Attrs[bi]
	span := math.Max(sa.MaxHi, sb.MaxHi) - math.Min(sa.MinLo, sb.MinLo)
	tolW := 0.0
	if h.Pred.Kind == fsql.PredNear {
		tolW = h.Pred.Tol.D - h.Pred.Tol.A
	}
	sel := 0.0
	if span > 0 {
		sel = (stats[a].AvgWidth(ai) + stats[b].AvgWidth(bi) + tolW) / span
	}
	if d := math.Max(stats[a].Distinct(ai), stats[b].Distinct(bi)); d >= 1 {
		sel = math.Max(sel, 1/d)
	}
	if sel <= 0 {
		sel = fallbackSel
	}
	if sel > 1 {
		sel = 1
	}
	f := sel * math.Max(rows[a], rows[b])
	if f < minFanout {
		f = minFanout
	}
	return f
}

// estimateJoin plans the flat join: predicates are homed on their
// relations and pushed down, the join order is chosen by dynamic
// programming over the join graph (Section 8 suggests exactly this for
// Q′_K), and each step picks extended merge-join or block nested-loop by
// comparing their estimated costs.
func (p *Plan) estimateJoin(j *Join, opts Options) {
	n := len(j.Inputs)
	if n == 0 {
		j.Err = fmt.Errorf("core: flat query has no relations")
		return
	}
	scans := make([]*Scan, n)
	schemas := make([]*frel.Schema, n)
	stats := make([]*frel.TableStats, n)
	rows := make([]float64, n)
	for i, in := range j.Inputs {
		sc := in.(*Scan)
		scans[i] = sc
		schemas[i] = sc.Schema
		stats[i], rows[i] = p.relRows(sc.Table)
		sc.est = Est{Rows: rows[i], Cost: rows[i]}
	}

	// Partition predicates by the set of relations they reference.
	j.JoinPreds, j.Const = nil, nil
	local := make([][]fsql.Predicate, n)
	for _, pr := range j.Preds {
		if pr.Kind != fsql.PredCompare && pr.Kind != fsql.PredNear {
			j.Err = fmt.Errorf("core: flat query contains non-comparison predicate %v", pr)
			return
		}
		var rels []int
		seen := map[int]bool{}
		for _, opd := range []fsql.Operand{pr.Left, pr.Right} {
			if opd.Kind != fsql.OpdRef {
				continue
			}
			home := -1
			for i, s := range schemas {
				if s.Has(opd.Ref) {
					if home >= 0 {
						j.Err = fmt.Errorf("core: ambiguous reference %q (resolves in %s and %s)", opd.Ref, schemas[home].Name, s.Name)
						return
					}
					home = i
				}
			}
			if home < 0 {
				j.Err = fmt.Errorf("core: cannot resolve reference %q", opd.Ref)
				return
			}
			if !seen[home] {
				seen[home] = true
				rels = append(rels, home)
			}
		}
		switch len(rels) {
		case 0:
			j.Const = append(j.Const, pr)
		case 1:
			local[rels[0]] = append(local[rels[0]], pr)
		case 2:
			j.JoinPreds = append(j.JoinPreds, HomedPred{pr, rels})
		default:
			j.Err = fmt.Errorf("core: predicate %v references more than two relations", pr)
			return
		}
	}

	// Push single-relation predicates down as filters over their scans.
	inRows := make([]float64, n)
	copy(inRows, rows)
	for i := range j.Inputs {
		if len(local[i]) == 0 {
			continue
		}
		sel := 1.0
		for _, pr := range local[i] {
			sel *= filterSelectivity(pr, schemas[i], stats[i])
		}
		inRows[i] = rows[i] * sel
		f := &Filter{Input: scans[i], Preds: local[i], Label: schemas[i].Name,
			Fused: KernelEligible(local[i])}
		f.est = Est{Rows: inRows[i], Cost: rows[i] + rows[i]*cDeg*float64(len(local[i]))}
		j.Inputs[i] = f
	}

	// edges[i][j]: an equality/NEAR predicate links i and j; fanout[i][j]
	// is its estimated per-tuple match count (min over parallel edges).
	// pf[pi] records each predicate's own fanout for the per-step merge
	// choice.
	edges := make([][]bool, n)
	fanout := make([][]float64, n)
	for i := range edges {
		edges[i] = make([]bool, n)
		fanout[i] = make([]float64, n)
	}
	pf := make([]float64, len(j.JoinPreds))
	for pi, h := range j.JoinPreds {
		pf[pi] = math.Inf(1)
		eqish := h.Pred.Kind == fsql.PredCompare && h.Pred.Op == fuzzy.OpEq || h.Pred.Kind == fsql.PredNear
		if !eqish {
			continue
		}
		a, b := h.Rels[0], h.Rels[1]
		f := edgeFanout(h, schemas, stats, inRows)
		pf[pi] = f
		if !edges[a][b] || f < fanout[a][b] {
			fanout[a][b], fanout[b][a] = f, f
		}
		edges[a][b], edges[b][a] = true, true
	}

	order := joinOrder(n, inRows, edges, fanout, opts)
	if order == nil {
		j.Err = fmt.Errorf("core: join order reconstruction failed")
		return
	}
	j.Order = order

	// Walk the left-deep join in the chosen order, assigning predicates
	// to steps and choosing each step's algorithm by cost.
	cost := 0.0
	for _, in := range j.Inputs {
		cost += in.Est().Cost
	}
	curSchema := schemas[order[0]]
	curRows := inRows[order[0]]
	// curLeaf is the accumulated left side while it is still a single plan
	// leaf (before the first join step) — the only state in which an order
	// index can serve it directly.
	curLeaf := j.Inputs[order[0]]
	joined := map[int]bool{order[0]: true}
	used := make([]bool, len(j.JoinPreds))
	j.Steps = nil
	for _, next := range order[1:] {
		nextSchema := schemas[next]
		// Predicates now evaluable: both endpoints in joined ∪ {next},
		// with at least one endpoint being next.
		var applicable []int
		for pi, h := range j.JoinPreds {
			if used[pi] {
				continue
			}
			ok := true
			touchesNext := false
			for _, r := range h.Rels {
				if r == next {
					touchesNext = true
				} else if !joined[r] {
					ok = false
				}
			}
			if ok && touchesNext {
				applicable = append(applicable, pi)
			}
		}

		// Merge candidate: the lowest-fanout numeric equality predicate
		// orientable between the accumulated side and next (NEAR runs as a
		// band merge-join and is considered after equalities, like the
		// executor's historical preference).
		step := JoinStep{Next: next, MergePred: -1}
		best := math.Inf(1)
		for pass := 0; pass < 2; pass++ {
			for _, pi := range applicable {
				pr := j.JoinPreds[pi].Pred
				isEq := pr.Kind == fsql.PredCompare && pr.Op == fuzzy.OpEq
				isNear := pr.Kind == fsql.PredNear
				if pass == 0 && !isEq || pass == 1 && !isNear {
					continue
				}
				if pr.Left.Kind != fsql.OpdRef || pr.Right.Kind != fsql.OpdRef {
					continue
				}
				var cRef, nRef string
				tol := pr.Tol
				switch {
				case curSchema.Has(pr.Left.Ref) && nextSchema.Has(pr.Right.Ref):
					cRef, nRef = pr.Left.Ref, pr.Right.Ref
				case nextSchema.Has(pr.Left.Ref) && curSchema.Has(pr.Right.Ref):
					cRef, nRef = pr.Right.Ref, pr.Left.Ref
					// d(a ≈ b) under tol equals d(b ≈ a) under the negated
					// tolerance (differences flip sign).
					tol = fuzzy.Neg(tol)
				default:
					continue
				}
				ci, _ := curSchema.Resolve(cRef)
				ni, _ := nextSchema.Resolve(nRef)
				if curSchema.Attrs[ci].Kind != frel.KindNumber || nextSchema.Attrs[ni].Kind != frel.KindNumber {
					continue
				}
				if pf[pi] < best {
					best = pf[pi]
					step.MergePred = pi
					step.LeftAttr, step.RightAttr, step.Tol = cRef, nRef, tol
				}
			}
		}

		// Output estimate, as in the ordering DP's size formula.
		connected := false
		stepFanout := math.Inf(1)
		for k := range joined {
			if edges[k][next] {
				connected = true
				if fanout[k][next] < stepFanout {
					stepFanout = fanout[k][next]
				}
			}
		}
		var outRows float64
		if connected {
			outRows = stepFanout * math.Min(curRows, inRows[next])
			step.Fanout = stepFanout
		} else {
			outRows = curRows * inRows[next]
		}

		// Merge-join pays amortized sorts plus a linear merge; block
		// nested-loop pays a degree evaluation per tuple pair. A merge
		// input served from a persistent order index pays no sort at all.
		nlCost := curRows*inRows[next]*cDeg + outRows
		if step.MergePred >= 0 {
			lSort := cSortAmort * curRows * log2n(curRows)
			if curLeaf != nil && p.hasOrderIndex(curLeaf, step.LeftAttr) {
				step.LeftIndexed = true
				lSort = 0
			}
			rSort := cSortAmort * inRows[next] * log2n(inRows[next])
			if p.hasOrderIndex(j.Inputs[next], step.RightAttr) {
				step.RightIndexed = true
				rSort = 0
			}
			mergeCost := lSort + rSort + curRows + inRows[next] + outRows
			if mergeCost <= nlCost {
				step.Merge = true
				used[step.MergePred] = true
				cost += mergeCost
			} else {
				step.MergePred = -1
				step.LeftAttr, step.RightAttr, step.Tol = "", "", fuzzy.Trapezoid{}
				step.LeftIndexed, step.RightIndexed = false, false
				cost += nlCost
			}
		} else {
			cost += nlCost
		}
		for _, pi := range applicable {
			if step.Merge && pi == step.MergePred {
				continue
			}
			step.Extras = append(step.Extras, pi)
			used[pi] = true
		}

		curSchema = curSchema.Join(nextSchema)
		curRows = outRows
		curLeaf = nil
		joined[next] = true
		j.Steps = append(j.Steps, step)
	}
	if len(j.Const) > 0 {
		cost += curRows * cDeg * float64(len(j.Const))
	}
	j.est = Est{Rows: curRows, Cost: cost}
}

// joinOrder chooses a left-deep join order by dynamic programming over
// relation subsets, minimizing the sum of estimated intermediate sizes
// (Section 8's suggestion for chain queries Q′_K). Absent any edge the
// join is a cross product. A nil result means reconstruction failed.
func joinOrder(n int, sizes []float64, edges [][]bool, fanout [][]float64, opts Options) []int {
	if n == 1 {
		return []int{0}
	}
	if n > 12 || opts.DisableJoinReorder {
		// Too many relations for subset DP (or reordering disabled): keep
		// the syntactic order.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}

	// est[mask] is the estimated size of joining the subset.
	full := 1 << n
	est := make([]float64, full)
	for mask := 1; mask < full; mask++ {
		if mask&(mask-1) == 0 {
			for i := 0; i < n; i++ {
				if mask == 1<<i {
					est[mask] = sizes[i]
				}
			}
			continue
		}
		est[mask] = math.Inf(1)
	}
	cost := make([]float64, full)
	last := make([]int, full)
	for mask := range cost {
		cost[mask] = math.Inf(1)
		last[mask] = -1
	}
	for i := 0; i < n; i++ {
		cost[1<<i] = 0
	}
	for mask := 1; mask < full; mask++ {
		if mask&(mask-1) == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			rest := mask &^ (1 << j)
			if rest == 0 || math.IsInf(cost[rest], 1) {
				continue
			}
			// Estimate the size of rest ⋈ j.
			connected := false
			for k := 0; k < n; k++ {
				if rest&(1<<k) != 0 && edges[k][j] {
					connected = true
					break
				}
			}
			var sz float64
			if connected {
				f := bestFanout(rest, j, n, edges, fanout)
				sz = f * math.Min(est[rest], sizes[j])
			} else {
				sz = est[rest] * sizes[j]
			}
			c := cost[rest] + sz
			if c < cost[mask] {
				cost[mask] = c
				last[mask] = j
				est[mask] = sz
			}
		}
	}
	order := make([]int, 0, n)
	mask := full - 1
	for mask != 0 {
		j := last[mask]
		if j < 0 {
			// Single relation left.
			for i := 0; i < n; i++ {
				if mask == 1<<i {
					j = i
				}
			}
			if j < 0 {
				return nil
			}
		}
		order = append(order, j)
		mask &^= 1 << j
	}
	// Reverse: we reconstructed from last to first.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// bestFanout returns the smallest estimated fanout among the equality
// edges connecting j to the subset.
func bestFanout(rest, j, n int, edges [][]bool, fanout [][]float64) float64 {
	best := math.Inf(1)
	for k := 0; k < n; k++ {
		if rest&(1<<k) != 0 && edges[k][j] && fanout[k][j] < best {
			best = fanout[k][j]
		}
	}
	if math.IsInf(best, 1) {
		return fallbackFanout
	}
	return best
}

// leafEst sizes a block leaf (Scan or Filter-over-Scan) and returns its
// output cardinality.
func (p *Plan) leafEst(nd Node) float64 {
	switch n := nd.(type) {
	case *Scan:
		_, rows := p.relRows(n.Table)
		n.est = Est{Rows: rows, Cost: rows}
		return rows
	case *Filter:
		sc, ok := n.Input.(*Scan)
		if !ok {
			in := p.estimateDefault(n.Input)
			n.est = Est{Rows: in.Rows * fallbackSel, Cost: in.Cost + in.Rows*cDeg*float64(len(n.Preds))}
			return n.est.Rows
		}
		ts, base := p.relRows(sc.Table)
		sc.est = Est{Rows: base, Cost: base}
		sel := 1.0
		for _, pr := range n.Preds {
			sel *= filterSelectivity(pr, sc.Schema, ts)
		}
		n.est = Est{Rows: base * sel, Cost: base + base*cDeg*float64(len(n.Preds))}
		return n.est.Rows
	}
	return defaultRows
}

// estimateAnti sizes the group-minimum anti-join: with a range attribute
// it is a pair of amortized sorts plus a linear merge; without one it
// degrades to a nested loop. The output carries every outer tuple (inner
// matches only lower degrees).
func (p *Plan) estimateAnti(a *AntiJoin) {
	l := p.leafEst(a.Outer)
	r := p.leafEst(a.Inner)
	cost := a.Outer.Est().Cost + a.Inner.Est().Cost
	if a.RangeFound {
		lSort := cSortAmort * l * log2n(l)
		if p.hasOrderIndex(a.Outer, a.RangeOuter) {
			lSort = 0
		}
		rSort := cSortAmort * r * log2n(r)
		if p.hasOrderIndex(a.Inner, a.RangeInner) {
			rSort = 0
		}
		cost += lSort + rSort + l + r
	} else {
		cost += l * r * cDeg
	}
	a.est = Est{Rows: l, Cost: cost}
}

// estimateGroupAgg sizes the pipelined group-aggregate join: the outer is
// sorted by the grouping attribute, the inner additionally when the
// correlation is an equality (enabling the merge-style pipeline).
func (p *Plan) estimateGroupAgg(g *GroupAgg) {
	l := p.leafEst(g.Outer)
	r := p.leafEst(g.Inner)
	lSort := cSortAmort * l * log2n(l)
	if p.hasOrderIndex(g.Outer, g.URef) {
		lSort = 0
	}
	cost := g.Outer.Est().Cost + g.Inner.Est().Cost + lSort + l + r
	if g.Op2 == fuzzy.OpEq {
		rSort := cSortAmort * r * log2n(r)
		// A NEAR correlation shifts the inner stream before sorting, so the
		// base relation's index order does not apply there.
		if !g.IsNear && p.hasOrderIndex(g.Inner, g.VRef) {
			rSort = 0
		}
		cost += rSort
	}
	g.est = Est{Rows: l, Cost: cost}
}

// estimateUncorr sizes the uncorrelated fold: the subquery is evaluated
// once and its aggregate applied as a constant filter over the outer.
func (p *Plan) estimateUncorr(u *UncorrSub) {
	l := p.leafEst(u.Outer)
	inner := 1.0
	for _, tr := range u.Sub.From {
		_, rows := p.relRows(tr)
		inner *= rows
	}
	u.est = Est{Rows: l, Cost: u.Outer.Est().Cost + inner*cDeg + l*cDeg}
}

// estimateDefault sizes a nested (apply-form) tree, used when the plan
// falls back to the naive strategy: a subquery predicate costs its body
// once per outer tuple.
func (p *Plan) estimateDefault(nd Node) Est {
	switch n := nd.(type) {
	case *Scan, *Filter:
		p.leafEst(nd)
	case *Join:
		rows, cost := 1.0, 0.0
		for _, c := range n.Inputs {
			e := p.estimateDefault(c)
			rows *= e.Rows
			cost += e.Cost
		}
		if len(n.Inputs) == 0 {
			rows = 0
		}
		cost += rows * cDeg * math.Max(1, float64(len(n.Preds)))
		n.est = Est{Rows: rows, Cost: cost}
	case *Apply:
		n.est = applyEst(p, n.Input, n.Body)
	case *AllQuantifier:
		n.est = applyEst(p, n.Input, n.Body)
	case *AntiJoin:
		p.estimateAnti(n)
	case *GroupAgg:
		p.estimateGroupAgg(n)
	case *UncorrSub:
		p.estimateUncorr(n)
	}
	return *nd.Est()
}

func applyEst(p *Plan, input, body Node) Est {
	in := p.estimateDefault(input)
	var b Est
	if body != nil {
		b = p.estimateDefault(body)
	}
	return Est{Rows: in.Rows, Cost: in.Cost + in.Rows*math.Max(1, b.Cost)}
}
