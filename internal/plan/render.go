package plan

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fsql"
)

// Lines renders the plan for EXPLAIN: the rewrite rules applied, the
// cost summary, and the logical operator tree with per-node estimates.
// The output is deterministic, so golden tests can diff it.
func (p *Plan) Lines() []string {
	rules := "(none)"
	if len(p.Rules) > 0 {
		rules = strings.Join(p.Rules, ", ")
	}
	lines := []string{
		"rules: " + rules,
		fmt.Sprintf("cost: %s rows, %s units (naive: %s units)",
			g3(p.Root.est.Rows), g3(p.Root.est.Cost), g3(p.NaiveCost)),
	}
	var walk func(nd Node, depth int)
	walk = func(nd Node, depth int) {
		pad := strings.Repeat("  ", depth)
		lines = append(lines, pad+describe(nd))
		if j, ok := nd.(*Join); ok && len(j.Order) > 0 {
			// Render join inputs in execution order, each step prefixed by
			// its algorithm decision.
			walk(j.Inputs[j.Order[0]], depth+1)
			for k, step := range j.Steps {
				algo := "nl-join"
				if step.Merge {
					algo = "merge-join " + step.LeftAttr + " = " + step.RightAttr
					switch {
					case step.LeftIndexed && step.RightIndexed:
						algo += " index(both)"
					case step.LeftIndexed:
						algo += " index(left)"
					case step.RightIndexed:
						algo += " index(right)"
					}
				}
				if step.Fanout > 0 {
					algo += " (fanout " + g3(step.Fanout) + ")"
				}
				if len(step.Extras) > 0 {
					algo += fmt.Sprintf(" +%d extra", len(step.Extras))
				}
				lines = append(lines, pad+"  ["+algo+"]")
				walk(j.Inputs[j.Order[k+1]], depth+1)
			}
			return
		}
		for _, c := range nd.Children() {
			if c != nil {
				walk(c, depth+1)
			}
		}
	}
	walk(p.Root, 0)
	return lines
}

// g3 formats an estimate with three significant digits.
func g3(v float64) string { return strconv.FormatFloat(v, 'g', 3, 64) }

// describe renders one node: kind, detail, and estimates.
func describe(nd Node) string {
	detail := ""
	switch n := nd.(type) {
	case *Scan:
		detail = n.Table.Binding()
	case *Filter:
		detail = fmt.Sprintf("%s (%d preds)", n.Label, len(n.Preds))
	case *Join:
		if n.Err != nil {
			detail = "error: " + n.Err.Error()
		}
	case *Apply:
		detail = predKindWord(n.Pred)
	case *AllQuantifier:
		detail = "all"
	case *AntiJoin:
		alg := "nested-loop"
		if n.RangeFound {
			alg = "merge " + n.RangeOuter + " = " + n.RangeInner
		}
		detail = fmt.Sprintf("[%s] %s", n.Mode, alg)
	case *GroupAgg:
		detail = fmt.Sprintf("%v(%s) by %s", n.Agg, n.ZRef, n.URef)
	case *UncorrSub:
		detail = fmt.Sprintf("%v folded vs %s", n.Agg, n.YRef)
	case *Project:
		if len(n.GroupBy) > 0 {
			detail = "group by " + strings.Join(n.GroupBy, ", ")
		}
	case *Threshold:
		var parts []string
		if n.Shape.With > 0 {
			parts = append(parts, fmt.Sprintf("with>=%v", n.Shape.With))
		}
		if n.Shape.OrderBy != "" {
			dir := "asc"
			if n.Shape.OrderDesc {
				dir = "desc"
			}
			parts = append(parts, "order "+n.Shape.OrderBy+" "+dir)
		}
		if n.Shape.HasLimit {
			parts = append(parts, fmt.Sprintf("limit %d", n.Shape.Limit))
		}
		detail = strings.Join(parts, ", ")
	}
	e := nd.Est()
	s := nd.Kind()
	if detail != "" {
		s += " " + detail
	}
	return fmt.Sprintf("%s  (rows=%s cost=%s)", s, g3(e.Rows), g3(e.Cost))
}

// predKindWord names a subquery predicate kind for rendering.
func predKindWord(p fsql.Predicate) string {
	switch p.Kind {
	case fsql.PredIn:
		return "in"
	case fsql.PredNotIn:
		return "not-in"
	case fsql.PredQuant:
		return "quantifier"
	case fsql.PredScalarSub:
		return "scalar-subquery"
	case fsql.PredExists:
		return "exists"
	case fsql.PredNotExists:
		return "not-exists"
	case fsql.PredNear:
		return "near"
	default:
		return "compare"
	}
}
