// Package plan is the logical planning layer of the query engine: a typed
// plan IR built from the fsql AST, the paper's unnesting theorems
// (Sections 4-8) expressed as independent rewrite rules over that IR, and
// a cost model fed by per-relation statistics (frel.TableStats) that
// chooses join order and join algorithms.
//
// Planning runs in three stages:
//
//	p, err := plan.Build(q, catalog)   // AST → logical plan IR
//	err = p.Rewrite()                  // apply the unnesting rules
//	p.Estimate(opts)                   // statistics, join order, costs
//
// The physical compilation of a plan into exec operators stays in
// internal/core, which owns sources, linguistic terms and the sort-order
// cache; the plan records every decision compilation needs (join order,
// merge vs nested-loop steps, predicate assignments) so the compiler
// replays them without re-deciding.
package plan

import (
	"fmt"

	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
)

// Catalog resolves the schemas and statistics of base relations; the
// evaluation environment (core.Env) implements it.
type Catalog interface {
	// BoundSchema returns the schema of the referenced relation with the
	// FROM binding (alias) applied as the schema name.
	BoundSchema(tr fsql.TableRef) (*frel.Schema, error)
	// RelStats returns the planner statistics of the referenced relation.
	RelStats(tr fsql.TableRef) (*frel.TableStats, error)
}

// OrderIndexes is optionally implemented by a Catalog whose storage
// maintains persistent sort-order indexes (see internal/catalog). The cost
// model uses it to drop the sort term of a merge-join input that execution
// will serve from an index instead of sorting.
type OrderIndexes interface {
	// HasOrderIndex reports whether the referenced relation carries a
	// fresh order index on the (possibly qualified) attribute.
	HasOrderIndex(tr fsql.TableRef, attr string) bool
}

// Options tunes planning.
type Options struct {
	// DisableJoinReorder keeps the syntactic relation order instead of the
	// dynamic-programming join ordering (ablation switch).
	DisableJoinReorder bool
}

// Strategy identifies how the planner decided to execute a query.
type Strategy int

// Strategies, in the paper's vocabulary.
const (
	// StrategyFlat: the query was already flat; evaluated as a join plan.
	StrategyFlat Strategy = iota
	// StrategyChain: a type N, type J, or K-level chain query (or an
	// ANY-quantified variant), flattened per Theorems 4.1, 4.2 and 8.1 and
	// evaluated as a join plan.
	StrategyChain
	// StrategyAntiJoin: a type JX query (NOT IN), evaluated with the
	// group-minimum merge anti-join of Query JX′ (Theorem 5.1).
	StrategyAntiJoin
	// StrategyGroupAgg: a type JA query (scalar aggregate subquery),
	// evaluated with the pipelined group-aggregate join of Query JA′ /
	// COUNT′ (Theorem 6.1).
	StrategyGroupAgg
	// StrategyAllAnti: a type JALL query (op ALL), evaluated with the
	// group-minimum merge anti-join of Query JALL′ (Theorem 7.1).
	StrategyAllAnti
	// StrategyUncorrelated: the subquery has no correlation; it is
	// evaluated once and folded into a constant set or scalar.
	StrategyUncorrelated
	// StrategyNaive: the query shape is outside the paper's unnesting
	// classes; the naive nested evaluation is used.
	StrategyNaive
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyFlat:
		return "flat"
	case StrategyChain:
		return "chain-join"
	case StrategyAntiJoin:
		return "jx-anti-join"
	case StrategyGroupAgg:
		return "ja-group-aggregate-join"
	case StrategyAllAnti:
		return "jall-anti-join"
	case StrategyUncorrelated:
		return "uncorrelated-subquery"
	case StrategyNaive:
		return "naive-nested-loop"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Est holds a node's cost estimates: output cardinality and cumulative
// work (an abstract unit the cost model defines; see cost.go).
type Est struct {
	Rows float64
	Cost float64
}

// Node is one operator of the logical plan tree.
type Node interface {
	// Kind is a short operator name for rendering.
	Kind() string
	// Children returns the input nodes.
	Children() []Node
	// Est returns the node's (mutable) cost estimates.
	Est() *Est
}

// Shape is the answer-shaping clause bundle of a query block — the WITH
// threshold, ORDER BY, and LIMIT — represented once as part of the
// Threshold node instead of being copied between query structs.
type Shape struct {
	With      float64
	OrderBy   string
	OrderDesc bool
	Limit     int
	HasLimit  bool
}

// ShapeOf extracts the answer-shaping clauses of a query block.
func ShapeOf(q *fsql.Select) Shape {
	return Shape{With: q.With, OrderBy: q.OrderBy, OrderDesc: q.OrderDesc,
		Limit: q.Limit, HasLimit: q.HasLimit}
}

// Scan reads one base relation under its FROM binding.
type Scan struct {
	est    Est
	Table  fsql.TableRef
	Schema *frel.Schema
}

func (s *Scan) Kind() string     { return "scan" }
func (s *Scan) Children() []Node { return nil }
func (s *Scan) Est() *Est        { return &s.est }

// Filter applies local comparison predicates above its input (always a
// Scan: filters exist in the IR only as pushed-down single-relation
// predicates). Label is the name EXPLAIN ANALYZE reports for the node.
type Filter struct {
	est   Est
	Input Node
	Preds []fsql.Predicate
	Label string
	// Fused records that every predicate is kernel-eligible (see
	// KernelEligible), so compilation may specialize the chain into one
	// fused degree kernel instead of a stack of interpreted closures.
	Fused bool
}

func (f *Filter) Kind() string     { return "filter" }
func (f *Filter) Children() []Node { return []Node{f.Input} }
func (f *Filter) Est() *Est        { return &f.est }

// KernelEligible reports whether a predicate list can be specialized into
// a fused degree kernel: every predicate must be a simple comparison or
// NEAR whose operands are attribute references or literals. Subquery
// predicates and prepared-statement parameters (bound later than plan
// time) stay on the interpreted path.
func KernelEligible(preds []fsql.Predicate) bool {
	for _, p := range preds {
		if p.Kind != fsql.PredCompare && p.Kind != fsql.PredNear {
			return false
		}
		for _, opd := range []fsql.Operand{p.Left, p.Right} {
			switch opd.Kind {
			case fsql.OpdRef, fsql.OpdNumber, fsql.OpdString:
			default:
				return false
			}
		}
	}
	return true
}

// JoinStep is one step of a left-deep join: the input joined at this
// step and the algorithm decision the cost model made for it.
type JoinStep struct {
	// Next indexes the Join input joined at this step.
	Next int
	// Merge selects the extended merge-join; false means block
	// nested-loop.
	Merge bool
	// LeftAttr/RightAttr are the merge attributes (LeftAttr resolves in
	// the accumulated left side, RightAttr in the next input), and Tol is
	// the band tolerance (zero for plain equality; NEAR predicates run as
	// band merge-joins, with the tolerance negated when the predicate was
	// written with the sides reversed).
	LeftAttr, RightAttr string
	Tol                 fuzzy.Trapezoid
	// MergePred indexes JoinPreds for the predicate the merge consumes
	// (-1 when Merge is false).
	MergePred int
	// Extras indexes JoinPreds for the predicates applied as extra
	// conjuncts during this step.
	Extras []int
	// Fanout is the estimated per-tuple match count of this step.
	Fanout float64
	// LeftIndexed/RightIndexed record that the cost model expects the
	// corresponding merge input to be served from a persistent order index
	// (its sort term was elided). Informational for EXPLAIN; execution
	// re-checks index freshness itself.
	LeftIndexed, RightIndexed bool
}

// HomedPred is a join predicate with the inputs it references.
type HomedPred struct {
	Pred fsql.Predicate
	Rels []int
}

// Join is a multi-way join of base relations under conjunctive
// comparison predicates — the flat form every unnesting rewrite of the
// paper produces (Query N′, J′, Q′_K). Build creates it with Scan inputs
// and the block's comparison predicates; Estimate homes the predicates,
// pushes single-relation ones down as Filter inputs, and fills Order,
// Steps, JoinPreds and Const.
type Join struct {
	est    Est
	Inputs []Node
	Preds  []fsql.Predicate

	// Filled by Estimate:
	JoinPreds []HomedPred      // two-relation predicates, step-assigned
	Const     []fsql.Predicate // predicates referencing no relation
	Order     []int            // left-deep join order over Inputs
	Steps     []JoinStep       // one per Order[1:]
	// Err is a homing/planning error (ambiguous or unresolvable
	// reference, hyper-edge predicate); it is surfaced when the plan is
	// executed, matching the nested evaluator's error timing.
	Err error
}

func (j *Join) Kind() string     { return "join" }
func (j *Join) Children() []Node { return j.Inputs }
func (j *Join) Est() *Est        { return &j.est }

// Apply is an unresolved subquery predicate: the per-outer-tuple
// evaluation of Pred's subquery (IN, NOT IN, ANY, EXISTS, NOT EXISTS, or
// a scalar aggregate). Rewrite rules eliminate Apply nodes; any that
// remain force the naive nested evaluation.
type Apply struct {
	est   Est
	Input Node
	Pred  fsql.Predicate
	// Body is the subquery block's own plan body (an apply-chain over a
	// Join), used by the chain rules to merge the block.
	Body Node
}

func (a *Apply) Kind() string     { return "apply" }
func (a *Apply) Children() []Node { return []Node{a.Input, a.Body} }
func (a *Apply) Est() *Est        { return &a.est }

// AllQuantifier is the op ALL subquery predicate (type JALL), kept as a
// distinct node because its rewrite (Theorem 7.1) inverts the linking
// predicate inside a group-minimum anti-join.
type AllQuantifier struct {
	est   Est
	Input Node
	Pred  fsql.Predicate
	Body  Node
}

func (a *AllQuantifier) Kind() string     { return "all-quantifier" }
func (a *AllQuantifier) Children() []Node { return []Node{a.Input, a.Body} }
func (a *AllQuantifier) Est() *Est        { return &a.est }

// AntiMode selects the penalty shape of the group-minimum anti-join.
type AntiMode int

const (
	// AntiNotIn is type JX (NOT IN), Query JX′.
	AntiNotIn AntiMode = iota
	// AntiAll is type JALL (op ALL), Query JALL′.
	AntiAll
	// AntiNotExists is NOT EXISTS: correlations only, no linking
	// predicate.
	AntiNotExists
)

// String names the anti-join mode.
func (m AntiMode) String() string {
	switch m {
	case AntiNotIn:
		return "not-in"
	case AntiAll:
		return "all"
	case AntiNotExists:
		return "not-exists"
	default:
		return fmt.Sprintf("AntiMode(%d)", int(m))
	}
}

// AntiJoin is the group-minimum anti-join of Queries JX′ and JALL′
// (Theorems 5.1 and 7.1; NOT EXISTS is the degenerate case without a
// linking predicate). Outer and Inner are block leaves (Scan or
// Filter-over-Scan).
type AntiJoin struct {
	est          Est
	Outer, Inner Node
	Mode         AntiMode
	// Link is the linking predicate outer.Y (=|op) inner.Z; HasLink is
	// false for NOT EXISTS.
	Link    fsql.Predicate
	HasLink bool
	// Corr are the correlation predicates referencing both blocks.
	Corr []fsql.Predicate
	// RangeOuter/RangeInner are the merge range attributes; RangeFound
	// false selects the nested-loop anti-join fallback.
	RangeOuter, RangeInner string
	RangeFound             bool
}

func (a *AntiJoin) Kind() string     { return "anti-join" }
func (a *AntiJoin) Children() []Node { return []Node{a.Outer, a.Inner} }
func (a *AntiJoin) Est() *Est        { return &a.est }

// GroupAgg is the pipelined group-aggregate join of Queries JA′ and
// COUNT′ (Theorem 6.1): outer tuples grouped by URef joined against the
// inner aggregated per group.
type GroupAgg struct {
	est          Est
	Outer, Inner Node
	// URef is the outer grouping attribute, VRef the inner correlation
	// attribute, related by `VRef Op2 URef`.
	URef, VRef string
	Op2        fuzzy.Op
	// ZRef is the aggregated inner attribute and Agg the aggregate.
	ZRef string
	Agg  fuzzy.AggFunc
	// YRef CmpOp agg(ZRef) is the outer comparison.
	YRef  string
	CmpOp fuzzy.Op
	// NearShift, when IsNear, folds a NEAR correlation into equality by
	// shifting the inner correlation attribute.
	NearShift fuzzy.Trapezoid
	IsNear    bool
}

func (g *GroupAgg) Kind() string     { return "group-agg-join" }
func (g *GroupAgg) Children() []Node { return []Node{g.Outer, g.Inner} }
func (g *GroupAgg) Est() *Est        { return &g.est }

// UncorrSub folds an uncorrelated aggregate subquery: the subquery is
// evaluated once, aggregated to a constant, and applied as a filter over
// the outer block (Section 6 notes no unnesting is needed).
type UncorrSub struct {
	est   Est
	Outer Node
	// Sub is the stripped subquery (the aggregate removed from its
	// SELECT item), evaluated once.
	Sub *fsql.Select
	Agg fuzzy.AggFunc
	// YRef CmpOp agg(Sub) is the outer comparison.
	YRef  string
	CmpOp fuzzy.Op
}

func (u *UncorrSub) Kind() string     { return "uncorrelated-agg" }
func (u *UncorrSub) Children() []Node { return []Node{u.Outer} }
func (u *UncorrSub) Est() *Est        { return &u.est }

// Project is the block's projection: items with max-degree duplicate
// elimination, or the GROUPBY/aggregate path when grouping is present.
type Project struct {
	est     Est
	Input   Node
	Items   []fsql.SelectItem
	GroupBy []string
	Having  []fsql.Predicate
}

func (p *Project) Kind() string     { return "project" }
func (p *Project) Children() []Node { return []Node{p.Input} }
func (p *Project) Est() *Est        { return &p.est }

// Threshold applies the answer shape: the WITH D >= threshold, ORDER BY,
// and LIMIT.
type Threshold struct {
	est   Est
	Input Node
	Shape Shape
}

func (t *Threshold) Kind() string     { return "threshold" }
func (t *Threshold) Children() []Node { return []Node{t.Input} }
func (t *Threshold) Est() *Est        { return &t.est }

// Plan is a planned query: the IR tree plus the strategy decision, the
// rewrite rules applied, and cost estimates.
type Plan struct {
	Query *fsql.Select
	Root  *Threshold
	// Strategy and Note report the decision in the paper's vocabulary
	// (exactly what EXPLAIN prints).
	Strategy Strategy
	Note     string
	// Rules lists the rewrite rules applied, in order.
	Rules []string
	// NaiveCost is the estimated cost of the naive nested evaluation of
	// the original query, reported alongside the plan cost. The unnesting
	// rewrites are applied whenever their preconditions hold (the paper's
	// equivalence theorems guarantee no loss), so NaiveCost is
	// informational, not a choice input.
	NaiveCost float64

	cat Catalog
}

// Proj returns the plan's projection node.
func (p *Plan) Proj() *Project { return p.Root.Input.(*Project) }
