package plan

import (
	"repro/internal/fsql"
)

// Build translates a parsed query block into its logical plan IR,
// resolving every relation reference (at any nesting depth) against the
// catalog. The tree comes back in nested form — subquery predicates as
// Apply/AllQuantifier nodes — ready for Rewrite.
func Build(q *fsql.Select, cat Catalog) (*Plan, error) {
	body, err := buildBody(q, cat)
	if err != nil {
		return nil, err
	}
	proj := &Project{Input: body, Items: q.Items, GroupBy: q.GroupBy, Having: q.Having}
	return &Plan{
		Query: q,
		Root:  &Threshold{Input: proj, Shape: ShapeOf(q)},
		cat:   cat,
	}, nil
}

// buildBody builds the plan body of one query block: a Join of the
// block's relations under its comparison predicates, wrapped by one
// Apply/AllQuantifier per subquery predicate. The first subquery
// predicate in WHERE order ends up innermost (nearest the Join), so the
// chain rules can recover the syntactic block order.
func buildBody(q *fsql.Select, cat Catalog) (Node, error) {
	join := &Join{}
	for _, tr := range q.From {
		schema, err := cat.BoundSchema(tr)
		if err != nil {
			return nil, err
		}
		join.Inputs = append(join.Inputs, &Scan{Table: tr, Schema: schema})
	}
	var body Node = join
	for _, p := range q.Where {
		switch p.Kind {
		case fsql.PredCompare, fsql.PredNear:
			join.Preds = append(join.Preds, p)
		default:
			var sub Node
			if p.Sub != nil {
				var err error
				sub, err = buildBody(p.Sub, cat)
				if err != nil {
					return nil, err
				}
			}
			if p.Kind == fsql.PredQuant && p.Quant == fsql.QuantAll {
				body = &AllQuantifier{Input: body, Pred: p, Body: sub}
			} else {
				body = &Apply{Input: body, Pred: p, Body: sub}
			}
		}
	}
	return body, nil
}
