package plan

import (
	"fmt"
	"strings"

	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
)

// The unnesting rewrite rules, by the names EXPLAIN reports. Each rule
// eliminates one subquery predicate node, per the paper's equivalence
// theorems (Sections 4-8).
const (
	RuleUnnestIn         = "unnest-in"         // Theorem 4.1/4.2/8.1: IN → linking equality
	RuleUnnestAny        = "unnest-any"        // op ANY/SOME → linking comparison
	RuleUnnestExists     = "unnest-exists"     // EXISTS → semi-join (correlations only)
	RuleUnnestNotIn      = "unnest-not-in"     // Theorem 5.1: NOT IN → Query JX′ anti-join
	RuleUnnestAll        = "unnest-all"        // Theorem 7.1: op ALL → Query JALL′ anti-join
	RuleUnnestNotExists  = "unnest-not-exists" // NOT EXISTS → anti-join without a link
	RuleUnnestScalarAgg  = "unnest-scalar-agg" // Theorem 6.1: scalar aggregate → Query JA′/COUNT′
	RuleFoldUncorrelated = "fold-uncorrelated" // Section 6: uncorrelated subquery → constant
)

// Rewrite applies the unnesting rules to the plan and records the
// strategy decision. Rules fire whenever their structural preconditions
// hold (the theorems guarantee equivalence); shapes outside every rule
// fall back to StrategyNaive with the reason in Note, leaving the tree
// in its nested (apply) form. Errors are reserved for malformed queries
// that no evaluator could run.
func (p *Plan) Rewrite() error {
	q := p.Query
	chain, join := splitBody(p.Proj().Input)
	grouping := len(q.GroupBy) > 0 || len(q.Having) > 0 || hasAggItems(q.Items)

	if len(chain) == 0 {
		p.Strategy, p.Note = StrategyFlat, "no nesting"
		return nil
	}
	if len(chain) > 1 {
		// Several subquery predicates flatten together when every one of
		// them is chain-compatible (IN, ANY/SOME, EXISTS): the flattening
		// of Theorem 8.1 applies conjunct by conjunct.
		allChain := true
		for _, nd := range chain {
			ap, ok := nd.(*Apply)
			if !ok { // op ALL
				allChain = false
				break
			}
			switch ap.Pred.Kind {
			case fsql.PredIn, fsql.PredExists, fsql.PredQuant:
			default:
				allChain = false
			}
		}
		if !allChain || grouping {
			p.toNaive("multiple subquery predicates")
			return nil
		}
		if err := p.flattenChain(chain, join); err != nil {
			p.toNaive("cannot flatten: " + err.Error())
			return nil
		}
		p.Strategy, p.Note = StrategyChain, "multi-subquery flattening"
		return nil
	}

	if grouping {
		p.toNaive("outer block uses GROUPBY/aggregates")
		return nil
	}
	switch nd := chain[0].(type) {
	case *AllQuantifier:
		return p.rewriteAnti(join, nd.Pred, nd.Body, AntiAll)
	case *Apply:
		switch nd.Pred.Kind {
		case fsql.PredIn:
			if err := p.flattenChain(chain, join); err != nil {
				p.toNaive("cannot flatten: " + err.Error())
				return nil
			}
			p.Strategy, p.Note = StrategyChain, "Theorem 4.1/4.2/8.1 flattening"
		case fsql.PredQuant:
			// ANY/SOME: flatten like IN but linking with the predicate's op
			// (ALL was built as an AllQuantifier node).
			if err := p.flattenChain(chain, join); err != nil {
				p.toNaive("cannot flatten: " + err.Error())
				return nil
			}
			p.Strategy, p.Note = StrategyChain, "ANY-quantifier flattening"
		case fsql.PredExists:
			if err := p.flattenChain(chain, join); err != nil {
				p.toNaive("cannot flatten: " + err.Error())
				return nil
			}
			p.Strategy, p.Note = StrategyChain, "EXISTS flattening (semi-join)"
		case fsql.PredNotIn:
			return p.rewriteAnti(join, nd.Pred, nd.Body, AntiNotIn)
		case fsql.PredScalarSub:
			return p.rewriteScalarAgg(join, nd.Pred)
		case fsql.PredNotExists:
			return p.rewriteAnti(join, nd.Pred, nd.Body, AntiNotExists)
		default:
			p.toNaive("unknown predicate kind")
		}
	}
	return nil
}

// toNaive records the naive fallback, leaving the tree in its nested
// form (execution re-evaluates the original query directly).
func (p *Plan) toNaive(note string) {
	p.Strategy, p.Note, p.Rules = StrategyNaive, note, nil
}

// splitBody separates a block body into its subquery-predicate chain
// (root first) and the base join.
func splitBody(body Node) ([]Node, *Join) {
	var chain []Node
	for {
		switch n := body.(type) {
		case *Apply:
			chain = append(chain, n)
			body = n.Input
		case *AllQuantifier:
			chain = append(chain, n)
			body = n.Input
		default:
			return chain, body.(*Join)
		}
	}
}

func hasAggItems(items []fsql.SelectItem) bool {
	for _, it := range items {
		if it.HasAgg {
			return true
		}
	}
	return false
}

// subqueryIsSimple reports whether a subquery block can take part in a
// rewrite: plain projection of one attribute, conjunctive WHERE, no
// grouping, no threshold of its own, and — when allowNested is false —
// no further nesting.
func subqueryIsSimple(sub *fsql.Select, allowNested bool) error {
	if sub == nil {
		return fmt.Errorf("missing subquery")
	}
	if len(sub.Items) != 1 || sub.Items[0].HasAgg {
		return fmt.Errorf("subquery must select exactly one plain attribute")
	}
	if len(sub.GroupBy) > 0 || len(sub.Having) > 0 {
		return fmt.Errorf("subquery uses GROUPBY/HAVING")
	}
	if sub.HasWith {
		return fmt.Errorf("subquery has its own WITH threshold")
	}
	if sub.OrderBy != "" || sub.HasLimit {
		return fmt.Errorf("subquery uses ORDER BY/LIMIT")
	}
	for _, p := range sub.Where {
		if p.Kind == fsql.PredCompare || p.Kind == fsql.PredNear {
			continue
		}
		if !allowNested {
			return fmt.Errorf("subquery is itself nested")
		}
		if p.Kind != fsql.PredIn && p.Kind != fsql.PredExists {
			return fmt.Errorf("nested subquery is not an IN/EXISTS chain")
		}
		if err := subqueryIsSimple(p.Sub, true); err != nil {
			return err
		}
	}
	return nil
}

// flattenChain merges every chain subquery block into the root join
// (Theorem 8.1; types N and J are the K = 2 case): all block relations
// are concatenated, all comparison predicates kept, and each nesting
// link X in (SELECT Y …) becomes the linking predicate X = Y (or X op Y
// for ANY). Binding names must be distinct across blocks. The merge is
// transactional: on error the tree is left exactly as built.
func (p *Plan) flattenChain(chain []Node, join *Join) error {
	inputs := append([]Node(nil), join.Inputs...)
	preds := append([]fsql.Predicate(nil), join.Preds...)
	var rules []string

	seen := map[string]bool{}
	addBindings := func(j *Join) error {
		for _, in := range j.Inputs {
			tr := in.(*Scan).Table
			b := strings.ToUpper(tr.Binding())
			if seen[b] {
				return fmt.Errorf("binding %q is reused across nesting levels", tr.Binding())
			}
			seen[b] = true
		}
		return nil
	}
	if err := addBindings(join); err != nil {
		return err
	}

	// Process bottom-most first: Build wraps the first WHERE subquery
	// innermost, so the reversed chain — with each merged block's own
	// applies re-surfaced at the front — visits blocks in the depth-first
	// order of the recursive flattening.
	work := make([]Node, 0, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		work = append(work, chain[i])
	}
	for len(work) > 0 {
		nd := work[0]
		work = work[1:]
		ap, ok := nd.(*Apply)
		if !ok {
			return fmt.Errorf("ALL quantifier inside a chain")
		}
		pr := ap.Pred
		var rule string
		switch pr.Kind {
		case fsql.PredIn:
			rule = RuleUnnestIn
		case fsql.PredQuant:
			rule = RuleUnnestAny
		case fsql.PredExists:
			rule = RuleUnnestExists
		default:
			return fmt.Errorf("chain blocks allow only comparisons, IN, and EXISTS")
		}
		if err := subqueryIsSimple(pr.Sub, true); err != nil {
			return err
		}
		subChain, subJoin := splitBody(ap.Body)
		if err := addBindings(subJoin); err != nil {
			return err
		}
		if pr.Kind != fsql.PredExists {
			op := fuzzy.OpEq
			if pr.Kind == fsql.PredQuant {
				op = pr.Op
			}
			preds = append(preds, fsql.Predicate{
				Kind:  fsql.PredCompare,
				Left:  pr.Left,
				Op:    op,
				Right: fsql.RefOperand(pr.Sub.Items[0].Ref),
			})
		}
		// An EXISTS block is a semi-join: the correlation predicates alone
		// carry the connection; max-degree duplicate elimination of the
		// final projection realizes the EXISTS maximum.
		inputs = append(inputs, subJoin.Inputs...)
		preds = append(preds, subJoin.Preds...)
		// The merged block's own subqueries become root applies, processed
		// next (depth-first).
		front := make([]Node, 0, len(subChain))
		for i := len(subChain) - 1; i >= 0; i-- {
			front = append(front, subChain[i])
		}
		work = append(front, work...)
		rules = append(rules, rule)
	}

	join.Inputs, join.Preds = inputs, preds
	p.Proj().Input = join
	p.Rules = append(p.Rules, rules...)
	return nil
}

// splitInnerPreds separates the inner block's WHERE into predicates local
// to the inner relations (p2) and correlation predicates referencing the
// outer schema.
func splitInnerPreds(inner *frel.Schema, preds []fsql.Predicate) (local, corr []fsql.Predicate) {
	for _, p := range preds {
		if resolvableIn(inner, p) {
			local = append(local, p)
		} else {
			corr = append(corr, p)
		}
	}
	return local, corr
}

// resolvableIn reports whether every attribute reference of the predicate
// (a PredCompare or PredNear) resolves in the given schema.
func resolvableIn(schema *frel.Schema, p fsql.Predicate) bool {
	if p.Kind != fsql.PredCompare && p.Kind != fsql.PredNear {
		return false
	}
	for _, opd := range []fsql.Operand{p.Left, p.Right} {
		if opd.Kind == fsql.OpdRef && !schema.Has(opd.Ref) {
			return false
		}
	}
	return true
}

// eqAttrPair extracts, from an equality predicate, the attribute of the
// outer schema and the attribute of the inner schema it links, both
// numeric; ok reports success.
func eqAttrPair(outer, inner *frel.Schema, p fsql.Predicate) (outerRef, innerRef string, ok bool) {
	if p.Kind != fsql.PredCompare || p.Op != fuzzy.OpEq ||
		p.Left.Kind != fsql.OpdRef || p.Right.Kind != fsql.OpdRef {
		return "", "", false
	}
	var oRef, iRef string
	switch {
	case outer.Has(p.Left.Ref) && inner.Has(p.Right.Ref):
		oRef, iRef = p.Left.Ref, p.Right.Ref
	case inner.Has(p.Left.Ref) && outer.Has(p.Right.Ref):
		oRef, iRef = p.Right.Ref, p.Left.Ref
	default:
		return "", "", false
	}
	oi, _ := outer.Resolve(oRef)
	ii, _ := inner.Resolve(iRef)
	if outer.Attrs[oi].Kind != frel.KindNumber || inner.Attrs[ii].Kind != frel.KindNumber {
		return "", "", false
	}
	return oRef, iRef, true
}

// checkJoinRefs verifies that every attribute reference of the predicate
// resolves in one of the two block schemas, mirroring what compiling the
// predicate against the pair will require.
func checkJoinRefs(outer, inner *frel.Schema, p fsql.Predicate) error {
	for _, opd := range []fsql.Operand{p.Left, p.Right} {
		if opd.Kind == fsql.OpdRef && !outer.Has(opd.Ref) && !inner.Has(opd.Ref) {
			return fmt.Errorf("core: cannot resolve attribute reference %q", opd.Ref)
		}
	}
	return nil
}

// makeLeaf wraps a block's scan in a filter holding its local predicates
// (the pre-filtered single-relation source of the rewritten queries).
func makeLeaf(scan *Scan, preds []fsql.Predicate) Node {
	if len(preds) == 0 {
		return scan
	}
	return &Filter{Input: scan, Preds: preds, Label: scan.Table.Binding(),
		Fused: KernelEligible(preds)}
}

// rewriteAnti handles type JX (NOT IN), type JALL (op ALL) and NOT
// EXISTS queries, rewriting them to the group-minimum anti-join of
// Queries JX′ and JALL′ (NOT EXISTS is the degenerate case without a
// linking predicate).
func (p *Plan) rewriteAnti(join *Join, sub fsql.Predicate, body Node, mode AntiMode) error {
	q := p.Query
	if sub.Sub == nil {
		p.toNaive("missing subquery")
		return nil
	}
	if len(q.From) != 1 || len(sub.Sub.From) != 1 {
		p.toNaive("anti-join rewrite needs single-relation blocks")
		return nil
	}
	if err := subqueryIsSimple(sub.Sub, false); err != nil {
		p.toNaive(err.Error())
		return nil
	}
	outerScan := join.Inputs[0].(*Scan)
	_, innerJoin := splitBody(body)
	innerScan := innerJoin.Inputs[0].(*Scan)
	outerSchema, innerSchema := outerScan.Schema, innerScan.Schema

	p2, corr := splitInnerPreds(innerSchema, sub.Sub.Where)

	// The linking predicate: outer.Y (=|op) inner.Z. NOT EXISTS has none.
	var link fsql.Predicate
	hasLink := mode != AntiNotExists
	if hasLink {
		linkOp := fuzzy.OpEq
		if mode == AntiAll {
			linkOp = sub.Op
		}
		link = fsql.Predicate{Kind: fsql.PredCompare, Left: sub.Left, Op: linkOp,
			Right: fsql.RefOperand(sub.Sub.Items[0].Ref)}
	}

	// Choose the merge range attribute among numeric equality predicates.
	// For JX the linking equality itself qualifies; for JALL and NOT
	// EXISTS only an equality correlation does.
	var rangeOuter, rangeInner string
	var rangeFound bool
	candidates := corr
	if mode == AntiNotIn {
		candidates = append([]fsql.Predicate{link}, corr...)
	}
	for _, pr := range candidates {
		if oRef, iRef, ok := eqAttrPair(outerSchema, innerSchema, pr); ok {
			rangeOuter, rangeInner, rangeFound = oRef, iRef, true
			break
		}
	}

	// The penalty terms of Queries JX′/JALL′ compile against the pair of
	// block schemas; references outside both make the rewrite unusable.
	for _, pr := range corr {
		if err := checkJoinRefs(outerSchema, innerSchema, pr); err != nil {
			p.toNaive(err.Error())
			return nil
		}
	}
	if hasLink {
		if err := checkJoinRefs(outerSchema, innerSchema, link); err != nil {
			p.toNaive(err.Error())
			return nil
		}
	}

	rule := RuleUnnestNotIn
	strategy := StrategyAntiJoin
	note := "Query JX' (Theorem 5.1)"
	switch mode {
	case AntiAll:
		rule, strategy, note = RuleUnnestAll, StrategyAllAnti, "Query JALL' (Theorem 7.1)"
	case AntiNotExists:
		rule, note = RuleUnnestNotExists, "NOT EXISTS anti-join"
	}

	p.Proj().Input = &AntiJoin{
		Outer: makeLeaf(outerScan, join.Preds), Inner: makeLeaf(innerScan, p2),
		Mode: mode, Link: link, HasLink: hasLink, Corr: corr,
		RangeOuter: rangeOuter, RangeInner: rangeInner, RangeFound: rangeFound,
	}
	p.Rules = append(p.Rules, rule)
	p.Strategy, p.Note = strategy, note
	return nil
}

func checkScalarSubquery(sub *fsql.Select) error {
	if sub == nil {
		return fmt.Errorf("core: missing subquery")
	}
	if len(sub.Items) != 1 || !sub.Items[0].HasAgg {
		return fmt.Errorf("core: scalar subquery must select exactly one aggregate")
	}
	return nil
}

// rewriteScalarAgg handles type JA queries (scalar aggregate subqueries,
// Section 6), rewriting to the pipelined group-aggregate join of Queries
// JA′ and COUNT′, or folding an uncorrelated subquery into a constant.
func (p *Plan) rewriteScalarAgg(join *Join, sub fsql.Predicate) error {
	q := p.Query
	if err := checkScalarSubquery(sub.Sub); err != nil {
		return err
	}
	if len(q.From) != 1 || len(sub.Sub.From) != 1 {
		p.toNaive("group-aggregate rewrite needs single-relation blocks")
		return nil
	}
	if len(sub.Sub.GroupBy) > 0 || len(sub.Sub.Having) > 0 || sub.Sub.HasWith ||
		sub.Sub.OrderBy != "" || sub.Sub.HasLimit {
		p.toNaive("aggregate subquery uses GROUPBY/HAVING/WITH/ORDER/LIMIT")
		return nil
	}
	for _, pr := range sub.Sub.Where {
		if pr.Kind != fsql.PredCompare && pr.Kind != fsql.PredNear {
			p.toNaive("aggregate subquery is itself nested")
			return nil
		}
	}
	outerScan := join.Inputs[0].(*Scan)
	outerSchema := outerScan.Schema
	innerSchema, err := p.cat.BoundSchema(sub.Sub.From[0])
	if err != nil {
		return err
	}
	p2, corr := splitInnerPreds(innerSchema, sub.Sub.Where)

	agg := sub.Sub.Items[0].Agg
	zRef := sub.Sub.Items[0].Ref
	if sub.Left.Kind != fsql.OpdRef || !outerSchema.Has(sub.Left.Ref) {
		p.toNaive("compared value is not an outer attribute")
		return nil
	}
	yRef := sub.Left.Ref

	if len(corr) == 0 {
		// No correlation: the inner block produces the same single value
		// for every outer tuple (Section 6 notes no unnesting is needed).
		stripped := *sub.Sub
		stripped.Items = []fsql.SelectItem{{Ref: zRef}}
		p.Proj().Input = &UncorrSub{
			Outer: makeLeaf(outerScan, join.Preds),
			Sub:   &stripped, Agg: agg, YRef: yRef, CmpOp: sub.Op,
		}
		p.Rules = append(p.Rules, RuleFoldUncorrelated)
		p.Strategy, p.Note = StrategyUncorrelated, "uncorrelated aggregate subquery"
		return nil
	}

	if len(corr) != 1 {
		p.toNaive("group-aggregate rewrite needs exactly one correlation predicate")
		return nil
	}
	// Normalize the correlation to S.V op2 R.U.
	cp := corr[0]
	if cp.Left.Kind != fsql.OpdRef || cp.Right.Kind != fsql.OpdRef {
		p.toNaive("correlation predicate must compare two attributes")
		return nil
	}
	var vRef, uRef string
	op2 := cp.Op
	// A NEAR correlation folds into exact equality by the sup-min
	// convolution identity: d(V ≈ U | tol) = d((V ⊕ tol') = U), so the
	// inner attribute is shifted by the tolerance and the pipeline
	// proceeds as an equi-correlation.
	var nearShift fuzzy.Trapezoid
	isNear := cp.Kind == fsql.PredNear
	switch {
	case innerSchema.Has(cp.Left.Ref) && outerSchema.Has(cp.Right.Ref):
		vRef, uRef = cp.Left.Ref, cp.Right.Ref
		if isNear {
			op2 = fuzzy.OpEq
			nearShift = fuzzy.Neg(cp.Tol)
		}
	case outerSchema.Has(cp.Left.Ref) && innerSchema.Has(cp.Right.Ref):
		vRef, uRef = cp.Right.Ref, cp.Left.Ref
		if isNear {
			op2 = fuzzy.OpEq
			nearShift = cp.Tol
		} else {
			op2 = op2.Flip()
		}
	default:
		p.toNaive("correlation predicate does not link inner and outer")
		return nil
	}
	vi, err := innerSchema.Resolve(vRef)
	if err != nil {
		return err
	}
	ui, err := outerSchema.Resolve(uRef)
	if err != nil {
		return err
	}
	if innerSchema.Attrs[vi].Kind != frel.KindNumber || outerSchema.Attrs[ui].Kind != frel.KindNumber {
		p.toNaive("correlation attributes must be numeric")
		return nil
	}
	if isNear {
		// The tolerance folds into the correlation attribute by shifting
		// it; when that attribute is also the aggregated one, the shift
		// would corrupt the aggregate inputs.
		zi, err := innerSchema.Resolve(zRef)
		if err != nil {
			return err
		}
		if zi == vi {
			p.toNaive("NEAR correlation on the aggregated attribute")
			return nil
		}
	}

	note := "Query JA' (Theorem 6.1)"
	if agg == fuzzy.AggCount {
		note = "Query COUNT' (Theorem 6.1)"
	}
	p.Proj().Input = &GroupAgg{
		Outer: makeLeaf(outerScan, join.Preds),
		Inner: makeLeaf(&Scan{Table: sub.Sub.From[0], Schema: innerSchema}, p2),
		URef:  uRef, VRef: vRef, Op2: op2, ZRef: zRef, Agg: agg,
		YRef: yRef, CmpOp: sub.Op, NearShift: nearShift, IsNear: isNear,
	}
	p.Rules = append(p.Rules, RuleUnnestScalarAgg)
	p.Strategy, p.Note = StrategyGroupAgg, note
	return nil
}
