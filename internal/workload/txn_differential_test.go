package workload

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frel"
	"repro/internal/storage"
)

// diffTxnSeeds is the number of random cases per class for the
// transactional leg (disk-backed databases are costlier to set up than
// the in-memory envs of the main harness).
const diffTxnSeeds = 10

// TestDifferentialTransactionalLeg runs every workload class through
// explicit transactions on a WAL-backed database and checks the
// transaction machinery never changes answers:
//
//   - a query inside BEGIN equals the auto-commit answer (the snapshot
//     sees exactly the committed state);
//   - after BEGIN / writes / ROLLBACK the relations are bit-identical to
//     their pre-transaction contents — tuples, order, and degrees — and
//     the query answer is unchanged;
//   - after BEGIN / writes / COMMIT the answer equals a database that
//     applied the same writes by plain auto-commit statements.
func TestDifferentialTransactionalLeg(t *testing.T) {
	seeds := diffTxnSeeds
	if testing.Short() {
		seeds = 3
	}
	for _, class := range Classes {
		class := class
		t.Run(class, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < int64(seeds); seed++ {
				c, err := NewDiffCase(class, seed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				writes := []string{extraInsert(c.R, 0), extraInsert(c.R, 1), extraInsert(c.S, 2)}

				sess := openDiffDB(t, c)
				base := runQuery(t, sess, c.Query)

				// Snapshot leg: the same query inside a transaction.
				mustScript(t, sess, `BEGIN`)
				if got := runQuery(t, sess, c.Query); !base.Equal(got, 1e-9) {
					t.Fatalf("seed %d: query answer changed by merely being inside a transaction", seed)
				}

				// Rollback leg: write, roll back, compare bit-for-bit.
				preR := readRelation(t, sess, "R")
				preS := readRelation(t, sess, "S")
				for _, w := range writes {
					mustScript(t, sess, w)
				}
				if _, err := sess.ExecScript(c.Query); err != nil {
					t.Fatalf("seed %d: query over own writes: %v", seed, err)
				}
				mustScript(t, sess, `ROLLBACK`)
				if got := readRelation(t, sess, "R"); !preR.Equal(got, 0) {
					t.Fatalf("seed %d: R not bit-identical after rollback (%d vs %d tuples)", seed, got.Len(), preR.Len())
				}
				if got := readRelation(t, sess, "S"); !preS.Equal(got, 0) {
					t.Fatalf("seed %d: S not bit-identical after rollback (%d vs %d tuples)", seed, got.Len(), preS.Len())
				}
				if got := runQuery(t, sess, c.Query); !base.Equal(got, 1e-9) {
					t.Fatalf("seed %d: query answer changed by a rolled-back transaction", seed)
				}

				// Commit leg: the same writes inside a transaction...
				mustScript(t, sess, `BEGIN`)
				for _, w := range writes {
					mustScript(t, sess, w)
				}
				mustScript(t, sess, `COMMIT`)
				committed := runQuery(t, sess, c.Query)
				sess.Close()

				// ...must answer like plain auto-commit statements.
				ref := openDiffDB(t, c)
				for _, w := range writes {
					mustScript(t, ref, w)
				}
				want := runQuery(t, ref, c.Query)
				ref.Close()
				if !want.Equal(committed, 1e-9) {
					t.Fatalf("seed %d: committed-transaction answer differs from auto-commit\nauto-commit (%d tuples):\n%v\ntransaction (%d tuples):\n%v",
						seed, want.Len(), want, committed.Len(), committed)
				}
			}
		})
	}
}

// openDiffDB opens a fresh WAL-backed database over an in-memory file
// system holding the case's R and S.
func openDiffDB(t *testing.T, c *DiffCase) *core.Session {
	t.Helper()
	sess, err := core.OpenSessionOptions("db", core.SessionOptions{BufferPages: 64, FS: storage.NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	for name, rel := range map[string]*frel.Relation{"R": c.R, "S": c.S} {
		if _, err := sess.Catalog().CreateRelation(name, rel.Schema); err != nil {
			t.Fatal(err)
		}
		h, err := sess.Catalog().Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AppendAll(rel); err != nil {
			t.Fatal(err)
		}
	}
	return sess
}

// extraInsert builds a schema-shaped crisp INSERT for the transactional
// writes (value i keeps repeated inserts distinguishable).
func extraInsert(rel *frel.Relation, i int) string {
	vals := make([]string, len(rel.Schema.Attrs))
	for j, a := range rel.Schema.Attrs {
		if a.Kind == frel.KindString {
			vals[j] = fmt.Sprintf("'x%d'", i)
		} else {
			vals[j] = fmt.Sprintf("%d", 900+7*i)
		}
	}
	return fmt.Sprintf("INSERT INTO %s VALUES (%s) DEGREE 0.5", rel.Schema.Name, strings.Join(vals, ", "))
}

func mustScript(t *testing.T, s *core.Session, src string) {
	t.Helper()
	if _, err := s.ExecScript(src); err != nil {
		t.Fatal(err)
	}
}

func runQuery(t *testing.T, s *core.Session, q string) *frel.Relation {
	t.Helper()
	answers, err := s.ExecScript(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("query returned %d answers", len(answers))
	}
	return answers[0]
}

func readRelation(t *testing.T, s *core.Session, name string) *frel.Relation {
	t.Helper()
	h, err := s.Catalog().Relation(name)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := h.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rel
}
