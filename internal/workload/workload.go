// Package workload generates the synthetic fuzzy relations of the paper's
// experiments (Section 9): randomly generated tuples of a controllable
// serialized size, where a tuple of one relation joins, on the average,
// with C tuples of the other relation, and the intervals associated with
// the join attribute values are kept small ("data may be imprecise but not
// very vague").
//
// Fanout control: both relations draw their join-attribute centres from
// the same pool of n/C widely spaced centre points; values are narrow
// triangular distributions jittered around their centre, so two values
// intersect exactly when they share a centre. With equal relation sizes
// each tuple then joins C tuples of the other relation in expectation.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/storage"
)

// Params describes one generated relation.
type Params struct {
	Name       string
	Tuples     int
	TupleBytes int     // target serialized tuple size (paper: 128..2048)
	Fanout     int     // C: average number of join partners (paper: 1..128)
	Width      float64 // half-width of the value supports (vagueness)
	Jitter     float64 // centre jitter as a fraction of Width (0..1)
	Seed       int64
}

// centreSpacing is the distance between adjacent centre points; values
// jittered within ±Width around a centre never cross centres as long as
// Width < centreSpacing/4.
const centreSpacing = 1000.0

// baseTupleBytes is the serialized size of a tuple before padding:
// degree (8) + three numeric attributes K, A, B (32 each).
const baseTupleBytes = 8 + 3*32

// Schema returns the experiment relation schema: a crisp key K and two
// fuzzy join attributes A (the correlation attribute) and B (the linking
// attribute), padded to the requested tuple size.
func Schema(name string, tupleBytes int) (*frel.Schema, error) {
	if tupleBytes < baseTupleBytes {
		return nil, fmt.Errorf("workload: tuple size %d below minimum %d", tupleBytes, baseTupleBytes)
	}
	s := frel.NewSchema(name,
		frel.Attribute{Name: "K", Kind: frel.KindNumber},
		frel.Attribute{Name: "A", Kind: frel.KindNumber},
		frel.Attribute{Name: "B", Kind: frel.KindNumber},
	)
	s.Pad = tupleBytes - baseTupleBytes
	return s, nil
}

// Generate builds the relation in memory.
func Generate(p Params) (*frel.Relation, error) {
	if p.Tuples < 0 {
		return nil, fmt.Errorf("workload: negative tuple count")
	}
	if p.Fanout < 1 {
		return nil, fmt.Errorf("workload: fanout must be >= 1")
	}
	if p.Width <= 0 {
		return nil, fmt.Errorf("workload: width must be positive")
	}
	if p.Width >= centreSpacing/4 {
		return nil, fmt.Errorf("workload: width %g too large for centre spacing %g", p.Width, centreSpacing)
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		return nil, fmt.Errorf("workload: jitter must be in [0, 1]")
	}
	schema, err := Schema(p.Name, p.TupleBytes)
	if err != nil {
		return nil, err
	}
	centres := p.Tuples / p.Fanout
	if centres < 1 {
		centres = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	rel := frel.NewRelation(schema)
	for i := 0; i < p.Tuples; i++ {
		c := float64(rng.Intn(centres)) * centreSpacing
		rel.Append(frel.NewTuple(1,
			frel.Crisp(float64(i)),
			frel.Num(fuzzyAround(rng, c, p.Width, p.Jitter)),
			frel.Num(fuzzyAround(rng, c, p.Width, p.Jitter)),
		))
	}
	return rel, nil
}

// fuzzyAround builds a narrow triangular value jittered around centre c.
func fuzzyAround(rng *rand.Rand, c, width, jitter float64) fuzzy.Trapezoid {
	j := (rng.Float64()*2 - 1) * jitter * width
	return fuzzy.Tri(c+j-width, c+j, c+j+width)
}

// Load generates the relation and writes it to a fresh heap file in the
// catalog, flushing it to disk.
func Load(cat *catalog.Catalog, p Params) (*storage.HeapFile, error) {
	rel, err := Generate(p)
	if err != nil {
		return nil, err
	}
	h, err := cat.CreateRelation(p.Name, rel.Schema)
	if err != nil {
		return nil, err
	}
	if err := h.AppendAll(rel); err != nil {
		return nil, err
	}
	if err := h.Flush(); err != nil {
		return nil, err
	}
	return h, nil
}
