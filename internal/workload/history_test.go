package workload

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/pkg/fuzzydb"
)

// TestConcurrentTransactionHistory is the snapshot-isolation property
// test: N writer sessions run randomized interleaved transactions
// (commit, rollback, conflict-retry) against one table while reader
// sessions — plain statements and multi-read read-only transactions —
// continuously observe it. Every observation (tuples plus membership
// degrees) is recorded with its wall-clock bounds and checked afterwards
// against what snapshot isolation over a single committed history allows:
//
//  1. Atomicity: a visible transaction is visible whole — all its rows,
//     with exactly the degrees it wrote. No torn transactions.
//  2. No rolled-back (or merely open) transaction is ever visible.
//  3. Snapshots are cuts of one committed order: the visible sets of any
//     two observations are comparable under inclusion, and each reader's
//     successive observations are monotonically non-decreasing.
//  4. Real time: a transaction whose commit was acknowledged before an
//     observation began is visible in it; one that began after the
//     observation ended is not.
//  5. The final state equals a single-threaded oracle replay: exactly
//     the committed transactions' rows, nothing else.
//
// HISTORY_SEED varies the randomized schedule; CI sweeps several seeds
// under the race detector.
func TestConcurrentTransactionHistory(t *testing.T) {
	seed := int64(1)
	if v := os.Getenv("HISTORY_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad HISTORY_SEED %q: %v", v, err)
		}
		seed = n
	}

	const (
		writers    = 4
		readers    = 3
		rowsPerTxn = 3
	)
	txnsPerWriter := 12
	if testing.Short() {
		txnsPerWriter = 4
	}

	db, err := fuzzydb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec(`CREATE TABLE H (TXN NUMBER, SEQ NUMBER)`); err != nil {
		t.Fatal(err)
	}

	// rowDegree is the membership degree transaction id writes on its
	// seq-th row: sixteenths, exact in binary floating point, so the
	// checker can compare degrees without tolerance.
	rowDegree := func(id, seq int) float64 {
		return float64(1+(id*rowsPerTxn+seq)%15) / 16
	}

	type txnRecord struct {
		id        int
		beganAt   time.Time // before the transaction's BEGIN was issued
		ackedAt   time.Time // after Commit returned; zero unless committed
		committed bool
	}
	var (
		histMu sync.Mutex
		hist   []txnRecord
	)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*1000))
			sess, err := db.Session()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			ctx := context.Background()
			for i := 0; i < txnsPerWriter; i++ {
				id := w*txnsPerWriter + i
				rollback := rng.Intn(4) == 0 // every 4th transaction aborts itself
				rec := txnRecord{id: id, beganAt: time.Now()}
				for {
					if err := sess.Begin(ctx); err != nil {
						t.Error(err)
						return
					}
					err := error(nil)
					for seq := 0; seq < rowsPerTxn && err == nil; seq++ {
						err = sess.Exec(fmt.Sprintf(
							`INSERT INTO H VALUES (%d, %d) DEGREE %v`, id, seq, rowDegree(id, seq)))
						if err == nil && rng.Intn(3) == 0 {
							time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
						}
					}
					if err == nil && rollback {
						if err := sess.Rollback(ctx); err != nil {
							t.Error(err)
							return
						}
						break
					}
					if err == nil {
						err = sess.Commit(ctx)
					}
					if err == nil {
						rec.ackedAt = time.Now()
						rec.committed = true
						break
					}
					if fe, ok := fuzzydb.AsError(err); ok && fe.Code == fuzzydb.CodeTxnConflict {
						continue // aborted and rolled back; retry from BEGIN
					}
					t.Error(err)
					return
				}
				histMu.Lock()
				hist = append(hist, rec)
				histMu.Unlock()
			}
		}(w)
	}

	// Observations. visible maps transaction id to the rows seen of it:
	// seq -> degree.
	type obs struct {
		reader     int
		start, end time.Time
		inTxn      bool // one read of a multi-read read-only transaction
		visible    map[int]map[int]float64
	}
	var (
		obsMu sync.Mutex
		all   []obs
	)
	observe := func(reader int, sess *fuzzydb.Session, inTxn bool) (obs, error) {
		o := obs{reader: reader, start: time.Now(), inTxn: inTxn, visible: make(map[int]map[int]float64)}
		res, err := sess.Query(`SELECT H.TXN, H.SEQ FROM H`)
		if err != nil {
			return o, err
		}
		o.end = time.Now()
		for i := 0; i < res.Len(); i++ {
			row := res.Row(i)
			id, err1 := strconv.Atoi(row[0])
			seq, err2 := strconv.Atoi(row[1])
			if err1 != nil || err2 != nil {
				return o, fmt.Errorf("unparsable row %v", row)
			}
			if o.visible[id] == nil {
				o.visible[id] = make(map[int]float64)
			}
			o.visible[id][seq] = res.Degree(i)
		}
		return o, nil
	}

	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			rng := rand.New(rand.NewSource(seed + 7777 + int64(r)))
			sess, err := db.Session()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			ctx := context.Background()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(3) == 0 {
					// A read-only transaction: every read inside it must
					// return the identical BEGIN-time snapshot.
					if err := sess.Begin(ctx); err != nil {
						t.Error(err)
						return
					}
					var reads []obs
					for k := 0; k < 3; k++ {
						o, err := observe(r, sess, true)
						if err != nil {
							t.Error(err)
							return
						}
						reads = append(reads, o)
						time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
					}
					if err := sess.Commit(ctx); err != nil {
						t.Error(err)
						return
					}
					for k := 1; k < len(reads); k++ {
						if !sameVisible(reads[0].visible, reads[k].visible) {
							t.Errorf("reader %d: read-only transaction's read %d differs from its first read", r, k)
						}
					}
					// Only the first read enters the history record: the
					// later ones are intentionally stale and would fail
					// the real-time check.
					obsMu.Lock()
					all = append(all, reads[0])
					obsMu.Unlock()
					continue
				}
				o, err := observe(r, sess, false)
				if err != nil {
					t.Error(err)
					return
				}
				obsMu.Lock()
				all = append(all, o)
				obsMu.Unlock()
			}
		}(r)
	}

	wg.Wait()
	close(stop)
	rg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Oracle: the committed transactions and their full row sets.
	committed := make(map[int]txnRecord)
	for _, rec := range hist {
		if rec.committed {
			committed[rec.id] = rec
		}
	}
	t.Logf("history: %d transactions (%d committed), %d observations",
		len(hist), len(committed), len(all))

	// (1) + (2): every visible transaction is committed and complete.
	for _, o := range all {
		for id, rows := range o.visible {
			if _, ok := committed[id]; !ok {
				t.Errorf("rolled-back or unknown transaction %d visible in an observation", id)
				continue
			}
			if len(rows) != rowsPerTxn {
				t.Errorf("transaction %d half-visible: %d of %d rows", id, len(rows), rowsPerTxn)
			}
			for seq, deg := range rows {
				if want := rowDegree(id, seq); deg != want {
					t.Errorf("transaction %d row %d: degree %v, want %v", id, seq, deg, want)
				}
			}
		}
	}

	// (3a): all observations' visible sets are comparable under inclusion
	// — they are cuts of one append-only committed history.
	ids := func(o obs) map[int]bool {
		s := make(map[int]bool, len(o.visible))
		for id := range o.visible {
			s[id] = true
		}
		return s
	}
	sorted := append([]obs(nil), all...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if len(sorted[j].visible) < len(sorted[i].visible) {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	for i := 1; i < len(sorted); i++ {
		if !subset(ids(sorted[i-1]), ids(sorted[i])) {
			t.Errorf("observations are not totally ordered by inclusion: %v ⊄ %v",
				keys(ids(sorted[i-1])), keys(ids(sorted[i])))
			break
		}
	}

	// (3b): each reader's successive observations grow monotonically.
	perReader := make(map[int][]obs)
	for _, o := range all {
		perReader[o.reader] = append(perReader[o.reader], o)
	}
	for r, seq := range perReader {
		for i := 1; i < len(seq); i++ {
			if !subset(ids(seq[i-1]), ids(seq[i])) {
				t.Errorf("reader %d: observation %d lost transactions visible in observation %d", r, i, i-1)
				break
			}
		}
	}

	// (4): real-time bounds against the commit acknowledgments.
	for _, o := range all {
		for id, rec := range committed {
			if rec.ackedAt.Before(o.start) {
				if _, ok := o.visible[id]; !ok {
					t.Errorf("transaction %d acknowledged at %v but invisible to an observation starting %v",
						id, rec.ackedAt, o.start)
				}
			}
		}
		for id := range o.visible {
			if rec, ok := committed[id]; ok && rec.beganAt.After(o.end) {
				t.Errorf("transaction %d began at %v yet is visible in an observation ending %v",
					id, rec.beganAt, o.end)
			}
		}
	}

	// (5): final state = oracle replay of the committed transactions.
	final, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	o, err := observe(-1, final, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.visible) != len(committed) {
		t.Errorf("final state holds %d transactions, oracle committed %d", len(o.visible), len(committed))
	}
	for id := range committed {
		rows, ok := o.visible[id]
		if !ok || len(rows) != rowsPerTxn {
			t.Errorf("final state misses transaction %d (have %d rows)", id, len(rows))
			continue
		}
		for seq, deg := range rows {
			if want := rowDegree(id, seq); deg != want {
				t.Errorf("final state: transaction %d row %d degree %v, want %v", id, seq, deg, want)
			}
		}
	}
}

// sameVisible reports whether two observations saw identical rows and
// degrees.
func sameVisible(a, b map[int]map[int]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for id, rows := range a {
		or, ok := b[id]
		if !ok || len(or) != len(rows) {
			return false
		}
		for seq, deg := range rows {
			if od, ok := or[seq]; !ok || od != deg {
				return false
			}
		}
	}
	return true
}

func subset(a, b map[int]bool) bool {
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
