package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fsql"
)

// expectedStrategy is the rewrite each class must classify to; a naive
// fallback would make the differential comparison vacuous.
var expectedStrategy = map[string]core.Strategy{
	"N":        core.StrategyChain,
	"J":        core.StrategyChain,
	"JX":       core.StrategyAntiJoin,
	"JA":       core.StrategyGroupAgg,
	"JA-COUNT": core.StrategyGroupAgg,
	"JALL":     core.StrategyAllAnti,
}

// diffSeeds is the number of random cases per class; the acceptance bar
// of the harness is >= 200 pairs per class with zero mismatches.
const diffSeeds = 200

// TestDifferentialUnnesting validates the equivalence theorems 4.1-8.1 by
// randomized differential testing: for every class and seed, the naive
// nested evaluation and the unnested rewrite must return the same tuples
// with the same membership degrees.
func TestDifferentialUnnesting(t *testing.T) {
	seeds := diffSeeds
	if testing.Short() {
		seeds = 25
	}
	for _, class := range Classes {
		class := class
		t.Run(class, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < int64(seeds); seed++ {
				c, err := NewDiffCase(class, seed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				q, err := fsql.ParseQuery(c.Query)
				if err != nil {
					t.Fatalf("seed %d: parse %q: %v", seed, c.Query, err)
				}
				env := core.NewMemEnv()
				env.RegisterRelation("R", c.R)
				env.RegisterRelation("S", c.S)

				if plan := env.Explain(q); plan.Strategy != expectedStrategy[class] {
					t.Fatalf("seed %d: class %s classified as %v (%s), want %v",
						seed, class, plan.Strategy, plan.Note, expectedStrategy[class])
				}

				naive, err := env.EvalNaive(q)
				if err != nil {
					t.Fatalf("seed %d: naive: %v", seed, err)
				}
				unnested, err := env.EvalUnnested(q)
				if err != nil {
					t.Fatalf("seed %d: unnested: %v", seed, err)
				}
				if !naive.Equal(unnested, 1e-9) {
					t.Fatalf("seed %d: class %s mismatch on %s\nR: %d tuples, S: %d tuples\nnaive (%d tuples):\n%v\nunnested (%d tuples):\n%v",
						seed, class, c.Query, c.R.Len(), c.S.Len(),
						naive.Len(), naive, unnested.Len(), unnested)
				}

				// Third leg: the strict tuple-at-a-time engine must agree
				// with the batched default. Reusing the env also routes
				// this evaluation through the sort-order cache populated
				// by the first unnested run, checking hit correctness.
				env.DisableBatch = true
				tuple, err := env.EvalUnnested(q)
				if err != nil {
					t.Fatalf("seed %d: unnested tuple-at-a-time: %v", seed, err)
				}
				if !unnested.Equal(tuple, 1e-9) {
					t.Fatalf("seed %d: class %s batched/tuple mismatch on %s\nbatched (%d tuples):\n%v\ntuple-at-a-time (%d tuples):\n%v",
						seed, class, c.Query,
						unnested.Len(), unnested, tuple.Len(), tuple)
				}
			}
		})
	}
}
