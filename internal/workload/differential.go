package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/frel"
)

// DiffCase is one randomized differential test case for the unnesting
// theorems: a seeded pair of relations plus a nested query drawn from one
// of the paper's nesting classes. Evaluating the query naively (nested
// semantics) and unnested (the theorems' rewrites) must produce the same
// tuples with the same degrees.
type DiffCase struct {
	Class string         // nesting class: N, J, JX, JA, JA-COUNT, JALL
	Query string         // the nested Fuzzy SQL query
	R, S  *frel.Relation // outer and inner relation
	With  float64        // the query's WITH D >= threshold (0 = none)
}

// Classes lists the nesting classes the differential harness covers,
// matching the paper's taxonomy (Sections 4-7): type N and type J chains
// (Theorems 4.1/4.2), type JX NOT IN (Theorem 5.1), type JA scalar
// aggregates including COUNT (Theorem 6.1), and type JALL quantified
// comparisons (Theorem 7.1).
var Classes = []string{"N", "J", "JX", "JA", "JA-COUNT", "JALL"}

// classQueries maps each class to its query template; %s is replaced by
// the optional WITH clause.
var classQueries = map[string]string{
	"N":        `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)%s`,
	"J":        `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A)%s`,
	"JX":       `SELECT R.K FROM R WHERE R.B NOT IN (SELECT S.B FROM S WHERE S.A = R.A)%s`,
	"JA":       `SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE S.A = R.A)%s`,
	"JA-COUNT": `SELECT R.K FROM R WHERE R.K >= (SELECT COUNT(S.B) FROM S WHERE S.A = R.A)%s`,
	"JALL":     `SELECT R.K FROM R WHERE R.B > ALL (SELECT S.B FROM S WHERE S.A = R.A)%s`,
}

// NewDiffCase builds the deterministic test case for (class, seed):
// relation sizes, fanout, vagueness, tuple degrees, and the WITH
// threshold all derive from the seed.
func NewDiffCase(class string, seed int64) (*DiffCase, error) {
	tmpl, ok := classQueries[class]
	if !ok {
		return nil, fmt.Errorf("workload: unknown differential class %q", class)
	}
	rng := rand.New(rand.NewSource(seed*1000003 + int64(len(class))*7919))
	fanouts := []int{1, 2, 4, 7}
	gen := func(name string) (*frel.Relation, error) {
		return Generate(Params{
			Name:       name,
			Tuples:     10 + rng.Intn(31),
			TupleBytes: baseTupleBytes,
			Fanout:     fanouts[rng.Intn(len(fanouts))],
			Width:      2 + 6*rng.Float64(),
			Jitter:     rng.Float64(),
			Seed:       rng.Int63(),
		})
	}
	r, err := gen("R")
	if err != nil {
		return nil, err
	}
	s, err := gen("S")
	if err != nil {
		return nil, err
	}
	// Degrade tuple degrees so the fuzzy-AND combination of membership
	// degrees (not just predicate degrees) is exercised.
	degradeDegrees(rng, r)
	degradeDegrees(rng, s)

	var with float64
	switch rng.Intn(3) {
	case 1:
		with = 0.3
	case 2:
		with = 0.6
	}
	withClause := ""
	if with > 0 {
		withClause = fmt.Sprintf(" WITH D >= %g", with)
	}
	return &DiffCase{
		Class: class,
		Query: fmt.Sprintf(tmpl, withClause),
		R:     r,
		S:     s,
		With:  with,
	}, nil
}

// degradeDegrees lowers about half of the tuples' membership degrees to a
// random value in (0, 1].
func degradeDegrees(rng *rand.Rand, rel *frel.Relation) {
	for i := range rel.Tuples {
		if rng.Float64() < 0.5 {
			rel.Tuples[i].D = 0.05 + 0.95*rng.Float64()
		}
	}
}
