package workload

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/storage"
)

func TestSchemaTupleSize(t *testing.T) {
	for _, size := range []int{128, 256, 512, 1024, 2048} {
		s, err := Schema("R", size)
		if err != nil {
			t.Fatal(err)
		}
		tup := frel.NewTuple(1, frel.Crisp(1), frel.Crisp(2), frel.Crisp(3))
		if got := frel.EncodedSize(s, tup); got != size {
			t.Errorf("tuple size = %d, want %d", got, size)
		}
	}
	if _, err := Schema("R", 32); err == nil {
		t.Errorf("undersized tuple: want error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Name: "R", Tuples: 100, TupleBytes: 128, Fanout: 7, Width: 5, Jitter: 0.5, Seed: 3}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 0) {
		t.Errorf("same seed should generate identical relations")
	}
	p.Seed = 4
	c, _ := Generate(p)
	if a.Equal(c, 0) {
		t.Errorf("different seeds should differ")
	}
}

// TestGenerateFanout: the average number of join partners (pairs whose B/B
// supports intersect) must be close to C.
func TestGenerateFanout(t *testing.T) {
	for _, c := range []int{1, 7, 32} {
		n := 2000
		r, err := Generate(Params{Name: "R", Tuples: n, TupleBytes: 128, Fanout: c, Width: 5, Jitter: 0.5, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Generate(Params{Name: "S", Tuples: n, TupleBytes: 128, Fanout: c, Width: 5, Jitter: 0.5, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		bi, _ := r.Schema.Resolve("B")
		// Count intersecting pairs on a sample of R to keep the test fast.
		sample := 200
		matches := 0
		for i := 0; i < sample; i++ {
			rv := r.Tuples[i].Values[bi].Num
			for _, st := range s.Tuples {
				if rv.Intersects(st.Values[bi].Num) {
					matches++
				}
			}
		}
		avg := float64(matches) / float64(sample)
		if avg < float64(c)*0.5 || avg > float64(c)*2 {
			t.Errorf("C = %d: measured fanout %.2f out of range", c, avg)
		}
	}
}

// TestGenerateCorrelatedAttrs: A and B of one tuple share a centre, so a
// pair matching on A also matches on B (the type J query joins on both).
func TestGenerateCorrelatedAttrs(t *testing.T) {
	r, err := Generate(Params{Name: "R", Tuples: 500, TupleBytes: 128, Fanout: 5, Width: 5, Jitter: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ai, _ := r.Schema.Resolve("A")
	bi, _ := r.Schema.Resolve("B")
	for _, tup := range r.Tuples {
		if !tup.Values[ai].Num.Intersects(tup.Values[bi].Num) {
			t.Fatalf("A and B of one tuple should share a centre: %v", tup)
		}
	}
}

// TestGenerateDegreesPositive: every generated tuple is a member of its
// relation, and same-centre values join with positive degree.
func TestGenerateDegreesPositive(t *testing.T) {
	r, err := Generate(Params{Name: "R", Tuples: 50, TupleBytes: 128, Fanout: 50, Width: 5, Jitter: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bi, _ := r.Schema.Resolve("B")
	// Fanout 50 of 50 tuples: single centre; all pairs must join.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			d := fuzzy.Eq(r.Tuples[i].Values[bi].Num, r.Tuples[j].Values[bi].Num)
			if d <= 0 {
				t.Fatalf("same-centre pair has zero join degree")
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	base := Params{Name: "R", Tuples: 10, TupleBytes: 128, Fanout: 1, Width: 5, Jitter: 0}
	bad := []func(*Params){
		func(p *Params) { p.Tuples = -1 },
		func(p *Params) { p.Fanout = 0 },
		func(p *Params) { p.Width = 0 },
		func(p *Params) { p.Width = centreSpacing },
		func(p *Params) { p.Jitter = 2 },
		func(p *Params) { p.TupleBytes = 10 },
	}
	for i, mutate := range bad {
		p := base
		mutate(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestLoad(t *testing.T) {
	cat := catalog.New(storage.NewManager(t.TempDir(), 16))
	p := Params{Name: "R", Tuples: 300, TupleBytes: 256, Fanout: 3, Width: 5, Jitter: 0.5, Seed: 1}
	h, err := Load(cat, p)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumTuples() != 300 {
		t.Errorf("NumTuples = %d", h.NumTuples())
	}
	// 256-byte tuples: at least 300*256/8192 ≈ 10 pages.
	if h.NumPages() < 10 {
		t.Errorf("NumPages = %d, want >= 10", h.NumPages())
	}
	back, err := h.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Generate(p)
	if !back.Equal(want, 0) {
		t.Errorf("loaded relation differs from generated one")
	}
}
