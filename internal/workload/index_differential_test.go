package workload

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/storage"
)

// indexDiffSeeds is the number of random cases per class for the
// with/without-index differential leg. Each case opens two disk-backed
// databases, so the sweep is smaller than the in-memory harness.
const indexDiffSeeds = 40

// evalDiskCase loads the case's relations into a fresh disk-backed
// database — optionally with persistent order indexes on every join
// attribute — evaluates the query through the full session path, and
// returns the answer together with the number of index-served sorts.
func evalDiskCase(t *testing.T, c *DiffCase, indexed bool) (*frel.Relation, int64) {
	t.Helper()
	sess, err := core.OpenSessionOptions("db", core.SessionOptions{BufferPages: 16, FS: storage.NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	cat := sess.Catalog()
	for _, rel := range []*frel.Relation{c.R, c.S} {
		h, err := cat.CreateRelation(rel.Schema.Name, rel.Schema)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AppendAll(rel); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	if indexed {
		// Index every attribute the class queries order by: the linking
		// attribute B and the correlation attribute A of both relations.
		if _, err := sess.ExecScript(`
			CREATE INDEX r_a ON R (A);
			CREATE INDEX r_b ON R (B);
			CREATE INDEX s_a ON S (A);
			CREATE INDEX s_b ON S (B);
		`); err != nil {
			t.Fatal(err)
		}
	}
	q, err := fsql.ParseQuery(c.Query)
	if err != nil {
		t.Fatalf("parse %q: %v", c.Query, err)
	}
	sess.Env.ResetStats()
	got, err := sess.EvalSelect(context.Background(), q)
	if err != nil {
		t.Fatalf("eval %q: %v", c.Query, err)
	}
	return got, sess.Env.Counters.IndexHits.Load()
}

// TestDifferentialIndexes is the index-equivalence leg of the harness:
// for every nesting class, evaluating each randomized case through a
// disk-backed database with persistent order indexes on the join
// attributes must return answers bit-identical — tuples and membership
// degrees at zero tolerance — to the same database without indexes.
// The indexed runs must actually be served from the indexes (nonzero
// index hits per class) or the comparison would be vacuous.
func TestDifferentialIndexes(t *testing.T) {
	seeds := indexDiffSeeds
	if testing.Short() {
		seeds = 8
	}
	for _, class := range Classes {
		class := class
		t.Run(class, func(t *testing.T) {
			t.Parallel()
			var hits int64
			for seed := int64(0); seed < int64(seeds); seed++ {
				c, err := NewDiffCase(class, seed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				plain, plainHits := evalDiskCase(t, c, false)
				if plainHits != 0 {
					t.Fatalf("seed %d: unindexed run reported %d index hits", seed, plainHits)
				}
				withIdx, idxHits := evalDiskCase(t, c, true)
				hits += idxHits
				if !plain.Equal(withIdx, 0) {
					t.Fatalf("seed %d: class %s indexed answer differs on %s\nunindexed (%d tuples):\n%v\nindexed (%d tuples):\n%v",
						seed, class, c.Query,
						plain.Len(), plain, withIdx.Len(), withIdx)
				}
			}
			if hits == 0 {
				t.Fatalf("class %s: no query was index-served across %d seeds", class, seeds)
			}
		})
	}
}
