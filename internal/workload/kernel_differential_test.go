package workload

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/frel"
	"repro/internal/fsql"
)

// kernelQueries mirrors classQueries with a kernel-eligible local
// predicate added to the outer block (and, for the uncorrelated class N,
// to the inner block too). The stock class templates carry no local
// predicates at all, so against them the fused filter kernels would never
// fire and a kernels-vs-interpreted differential would be vacuous.
// R.A = R.B compares two jittered triangular values generated around the
// same centre, so the predicate yields genuinely partial degrees rather
// than a crisp 0/1 cut.
var kernelQueries = map[string]string{
	"N":        `SELECT R.K FROM R WHERE R.A = R.B AND R.B IN (SELECT S.B FROM S WHERE S.A = S.B)%s`,
	"J":        `SELECT R.K FROM R WHERE R.A = R.B AND R.B IN (SELECT S.B FROM S WHERE S.A = R.A)%s`,
	"JX":       `SELECT R.K FROM R WHERE R.A = R.B AND R.B NOT IN (SELECT S.B FROM S WHERE S.A = R.A)%s`,
	"JA":       `SELECT R.K FROM R WHERE R.A = R.B AND R.B >= (SELECT AVG(S.B) FROM S WHERE S.A = R.A)%s`,
	"JA-COUNT": `SELECT R.K FROM R WHERE R.A = R.B AND R.K >= (SELECT COUNT(S.B) FROM S WHERE S.A = R.A)%s`,
	"JALL":     `SELECT R.K FROM R WHERE R.A = R.B AND R.B > ALL (SELECT S.B FROM S WHERE S.A = R.A)%s`,
}

// kernelDiffSeeds is the number of random cases per class and matrix
// stratum. KERNEL_SEED selects the stratum: stratum s covers seeds
// [s*kernelDiffSeeds, (s+1)*kernelDiffSeeds), so the CI matrix legs sweep
// disjoint seed ranges on top of the default stratum 0.
const kernelDiffSeeds = 50

// TestDifferentialKernels is the kernel-differential property test: for
// every nesting class and seed, the unnested evaluation must return
// bit-identical tuples and degrees (zero tolerance) across three engines —
// batched with fused degree kernels, batched interpreted, and strict
// tuple-at-a-time. Each case asserts non-vacuity (the kernels leg actually
// compiled fused kernels, the ablation legs compiled none) and that the
// kernel query variants still classify to the class's expected rewrite.
func TestDifferentialKernels(t *testing.T) {
	seeds := int64(kernelDiffSeeds)
	if testing.Short() {
		seeds = 10
	}
	stratum := int64(0)
	if v := os.Getenv("KERNEL_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad KERNEL_SEED %q: %v", v, err)
		}
		stratum = n
	}
	for _, class := range Classes {
		class := class
		t.Run(class, func(t *testing.T) {
			t.Parallel()
			for seed := stratum * kernelDiffSeeds; seed < stratum*kernelDiffSeeds+seeds; seed++ {
				c, err := NewDiffCase(class, seed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				withClause := ""
				if c.With > 0 {
					withClause = fmt.Sprintf(" WITH D >= %g", c.With)
				}
				query := fmt.Sprintf(kernelQueries[class], withClause)
				q, err := fsql.ParseQuery(query)
				if err != nil {
					t.Fatalf("seed %d: parse %q: %v", seed, query, err)
				}

				eval := func(leg string, disableKernels, disableBatch bool) (*frel.Relation, int64) {
					env := core.NewMemEnv()
					env.DisableKernels = disableKernels
					env.DisableBatch = disableBatch
					env.RegisterRelation("R", c.R)
					env.RegisterRelation("S", c.S)
					if plan := env.Explain(q); plan.Strategy != expectedStrategy[class] {
						t.Fatalf("seed %d: %s: class %s classified as %v (%s), want %v",
							seed, leg, class, plan.Strategy, plan.Note, expectedStrategy[class])
					}
					res, err := env.EvalUnnested(q)
					if err != nil {
						t.Fatalf("seed %d: %s: %v", seed, leg, err)
					}
					return res, env.Counters.KernelTuples.Load()
				}

				kern, kt := eval("kernels", false, false)
				if kt == 0 {
					t.Fatalf("seed %d: class %s: kernels leg compiled no fused kernels (vacuous differential) on %s",
						seed, class, query)
				}
				interp, it := eval("interpreted", true, false)
				if it != 0 {
					t.Fatalf("seed %d: interpreted leg processed %d kernel tuples, want 0", seed, it)
				}
				tuple, tt := eval("tuple", true, true)
				if tt != 0 {
					t.Fatalf("seed %d: tuple leg processed %d kernel tuples, want 0", seed, tt)
				}

				if !kern.Equal(interp, 0) {
					t.Fatalf("seed %d: class %s kernels/interpreted mismatch on %s\nR: %d tuples, S: %d tuples\nkernels (%d tuples):\n%v\ninterpreted (%d tuples):\n%v",
						seed, class, query, c.R.Len(), c.S.Len(),
						kern.Len(), kern, interp.Len(), interp)
				}
				if !kern.Equal(tuple, 0) {
					t.Fatalf("seed %d: class %s kernels/tuple mismatch on %s\nR: %d tuples, S: %d tuples\nkernels (%d tuples):\n%v\ntuple (%d tuples):\n%v",
						seed, class, query, c.R.Len(), c.S.Len(),
						kern.Len(), kern, tuple.Len(), tuple)
				}
			}
		})
	}
}
