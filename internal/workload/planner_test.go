package workload

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/plan"
)

// plannerQueries are multi-relation queries whose evaluation order the
// cost model is free to choose: three-way flat joins (including one
// written in a cross-product-first syntactic order) and a three-level
// chain that flattens to a three-way join (Theorem 8.1).
var plannerQueries = []string{
	`SELECT R.K FROM R, T, S WHERE R.A = S.A AND T.B = S.B`,
	`SELECT R.K FROM R, S, T WHERE R.A = S.A AND S.B = T.B AND R.K <= T.K`,
	`SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A AND S.B IN (SELECT T.B FROM T WHERE T.A = S.A))`,
}

// plannerRel draws one seeded workload relation.
func plannerRel(t *testing.T, rng *rand.Rand, name string) *frel.Relation {
	t.Helper()
	r, err := Generate(Params{
		Name:       name,
		Tuples:     8 + rng.Intn(20),
		TupleBytes: baseTupleBytes,
		Fanout:     []int{1, 2, 4}[rng.Intn(3)],
		Width:      2 + 5*rng.Float64(),
		Jitter:     rng.Float64(),
		Seed:       rng.Int63(),
	})
	if err != nil {
		t.Fatal(err)
	}
	degradeDegrees(rng, r)
	return r
}

// TestJoinOrderInvariance is the planner-seeded leg of the differential
// harness: the cost-based join-order choice must never change the answer.
// Every seeded case is evaluated three ways — cost-chosen order,
// syntactic order (DisableJoinReorder), and the naive nested evaluation —
// and all three must return the same tuples with the same degrees.
func TestJoinOrderInvariance(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	ordersDiffer := 0
	for qi, src := range plannerQueries {
		q, err := fsql.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		for seed := 0; seed < seeds; seed++ {
			rng := rand.New(rand.NewSource(int64(qi*100000 + seed)))
			rels := map[string]*frel.Relation{
				"R": plannerRel(t, rng, "R"),
				"S": plannerRel(t, rng, "S"),
				"T": plannerRel(t, rng, "T"),
			}
			newEnv := func(disableReorder bool) *core.Env {
				env := core.NewMemEnv()
				for name, r := range rels {
					env.RegisterRelation(name, r)
				}
				env.DisableJoinReorder = disableReorder
				return env
			}

			costEnv, synEnv := newEnv(false), newEnv(true)
			if diff, err := plannedOrdersDiffer(costEnv, synEnv, q); err != nil {
				t.Fatalf("seed %d: plan %q: %v", seed, src, err)
			} else if diff {
				ordersDiffer++
			}

			chosen, err := costEnv.EvalUnnested(q)
			if err != nil {
				t.Fatalf("seed %d: cost-ordered eval of %q: %v", seed, src, err)
			}
			syntactic, err := synEnv.EvalUnnested(q)
			if err != nil {
				t.Fatalf("seed %d: syntactic-order eval of %q: %v", seed, src, err)
			}
			if !chosen.Equal(syntactic, 1e-9) {
				t.Fatalf("seed %d: join order changed the answer of %q\ncost-chosen (%d tuples):\n%v\nsyntactic (%d tuples):\n%v",
					seed, src, chosen.Len(), chosen, syntactic.Len(), syntactic)
			}
			naive, err := newEnv(false).EvalNaive(q)
			if err != nil {
				t.Fatalf("seed %d: naive eval of %q: %v", seed, src, err)
			}
			if !chosen.Equal(naive, 1e-9) {
				t.Fatalf("seed %d: planner answer differs from naive on %q\nplanner (%d tuples):\n%v\nnaive (%d tuples):\n%v",
					seed, src, chosen.Len(), chosen, naive.Len(), naive)
			}
		}
	}
	// The property is vacuous if the DP always kept the syntactic order.
	if ordersDiffer == 0 {
		t.Error("cost-based ordering never deviated from the syntactic order; the invariance check is vacuous")
	}
	t.Logf("cost-chosen order differed from syntactic in %d cases", ordersDiffer)
}

// plannedOrdersDiffer plans q in both environments and reports whether
// the join orders disagree (both plans must be join-shaped).
func plannedOrdersDiffer(costEnv, synEnv *core.Env, q *fsql.Select) (bool, error) {
	cp, err := costEnv.PlanQuery(q)
	if err != nil {
		return false, err
	}
	sp, err := synEnv.PlanQuery(q)
	if err != nil {
		return false, err
	}
	cj, ok := cp.Proj().Input.(*plan.Join)
	if !ok {
		return false, fmt.Errorf("cost plan body is %T, want a join", cp.Proj().Input)
	}
	sj, ok := sp.Proj().Input.(*plan.Join)
	if !ok {
		return false, fmt.Errorf("syntactic plan body is %T, want a join", sp.Proj().Input)
	}
	if len(cj.Order) != len(sj.Order) {
		return true, nil
	}
	for i := range cj.Order {
		if cj.Order[i] != sj.Order[i] {
			return true, nil
		}
	}
	return false, nil
}
