package workload

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/frel"
	"repro/internal/storage"
)

// TestCrashRecovery is the crash-safety property test: a deterministic
// mutation workload runs over an in-memory file system while a FaultFS
// kills the I/O at the n-th mutating operation — for every n and every
// fault mode (clean stop, torn write, bit flip, dropped write). After each
// simulated crash the database is reopened over the surviving bytes and
// must recover to the state of some committed prefix of the workload,
// covering at least everything that was acknowledged before the fault.
// Nothing torn, nothing half-applied, no membership degree off.
//
// CRASH_SEED varies the deterministic fault parameters (torn prefix
// length, flipped bit position); CI sweeps a handful of seeds.
func TestCrashRecovery(t *testing.T) {
	seed := int64(1)
	if v := os.Getenv("CRASH_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CRASH_SEED %q: %v", v, err)
		}
		seed = n
	}

	steps := crashSteps(t)

	// Pass 1: clean run, capturing the expected database state after
	// every step. snaps[j] is the state once j steps have committed.
	snaps := make([]dbState, 0, len(steps)+1)
	snaps = append(snaps, dbState{})
	acked, err := runCrashSteps(storage.NewMemFS(), steps, func(s *core.Session) {
		snaps = append(snaps, snapshotDB(t, s))
	})
	if err != nil || acked != len(steps) {
		t.Fatalf("clean run: %d/%d steps, err %v", acked, len(steps), err)
	}

	// Pass 2: count the workload's injection points.
	counter := storage.NewFaultFS(storage.NewMemFS(), storage.FaultStop, 0, seed)
	if _, err := runCrashSteps(counter, steps, nil); err != nil {
		t.Fatalf("counting run: %v", err)
	}
	total := counter.Ops()
	if total < 20 {
		t.Fatalf("workload issues only %d mutating ops", total)
	}
	t.Logf("sweeping %d injection points × %d fault modes (seed %d)", total, len(storage.FaultModes), seed)

	// Pass 3: the sweep.
	step := int64(1)
	if testing.Short() {
		step = 7
	}
	for _, mode := range storage.FaultModes {
		for n := int64(1); n <= total; n += step {
			mem := storage.NewMemFS()
			ffs := storage.NewFaultFS(mem, mode, n, seed)
			acked, _ := runCrashSteps(ffs, steps, nil)
			if !ffs.Crashed() {
				continue // this mode reaches fewer ops than the stop count
			}

			// Survivor check: reopen over the base FS the crash left
			// behind and compare against the committed-prefix states.
			sess, err := core.OpenSessionOptions("db", core.SessionOptions{BufferPages: 8, FS: mem})
			if err != nil {
				t.Fatalf("%v@%d: reopen after crash: %v", mode, n, err)
			}
			got := snapshotDB(t, sess)
			verifyIndexes(t, sess, fmt.Sprintf("%v@%d", mode, n))
			matched := -1
			for j := acked; j <= len(steps); j++ {
				if got.equal(snaps[j]) {
					matched = j
					break
				}
			}
			if matched < 0 {
				t.Errorf("%v@%d: recovered state matches no committed prefix ≥ %d acked steps\nrecovered: %s",
					mode, n, acked, got)
			}
			if err := sess.Close(); err != nil {
				t.Fatalf("%v@%d: close: %v", mode, n, err)
			}
		}
	}
}

// crashStep is one unit of the workload; acknowledgment is per step.
type crashStep struct {
	name   string
	reopen bool // close the session and reopen the database first
	run    func(s *core.Session) error
}

// sqlStep wraps one Fuzzy SQL statement as a workload step.
func sqlStep(src string) crashStep {
	return crashStep{name: src, run: func(s *core.Session) error {
		_, err := s.ExecScript(src)
		return err
	}}
}

// crashSteps builds the workload: DDL, single inserts with varied degrees,
// a generated batch append (one transaction), checkpoints, a predicate
// DELETE (the rename-swap path), a DROP/recreate, and persistent-index
// lifecycle (CREATE INDEX build, maintained inserts, the DELETE rebuild,
// DROP INDEX) — split across a session restart so recovery itself is also
// run under fault injection.
func crashSteps(t *testing.T) []crashStep {
	t.Helper()
	schema, err := Schema("W", 128)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Generate(Params{
		Name: "W", Tuples: 40, TupleBytes: 128,
		Fanout: 4, Width: 8, Jitter: 0.5, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return []crashStep{
		sqlStep(`CREATE TABLE A (K NUMBER, NAME STRING)`),
		sqlStep(`INSERT INTO A VALUES (1, 'a') DEGREE 0.5`),
		sqlStep(`INSERT INTO A VALUES (2, 'b')`),
		sqlStep(`CREATE TABLE B (K NUMBER, V NUMBER)`),
		sqlStep(`INSERT INTO B VALUES (1, 10) DEGREE 0.25`),
		sqlStep(`INSERT INTO B VALUES (2, 20) DEGREE 0.875`),
		{name: "create W", run: func(s *core.Session) error {
			if _, err := s.Catalog().CreateRelation("W", schema); err != nil {
				return err
			}
			return s.Catalog().Save()
		}},
		{name: "batch append W", run: func(s *core.Session) error {
			h, err := s.Catalog().Relation("W")
			if err != nil {
				return err
			}
			return h.AppendAll(batch)
		}},
		sqlStep(`CHECKPOINT`),
		sqlStep(`INSERT INTO A VALUES (3, 'c') DEGREE 0.75`),

		{name: "restart", reopen: true, run: func(*core.Session) error { return nil }},
		sqlStep(`DELETE FROM B WHERE B.K = 1`),
		sqlStep(`INSERT INTO B VALUES (3, 30)`),
		// Index lifecycle under fault injection: the CREATE INDEX build,
		// inserts that maintain b_v (including the transactional ones
		// below), the DELETE contents-swap rebuild, and DROP INDEX. Every
		// reopened survivor cross-checks its indexes via verifyIndexes.
		sqlStep(`CREATE INDEX b_v ON B (V)`),
		sqlStep(`DROP TABLE A`),
		sqlStep(`CREATE TABLE A (K NUMBER, NAME STRING)`),
		sqlStep(`CREATE INDEX a_k ON A (K)`),
		sqlStep(`INSERT INTO A VALUES (9, 'z') DEGREE 0.125`),
		sqlStep(`CHECKPOINT`),
		sqlStep(`INSERT INTO A VALUES (10, 'y')`),
		sqlStep(`DELETE FROM B WHERE B.K = 2`),
		sqlStep(`DROP INDEX a_k`),
		sqlStep(`CREATE INDEX a_k ON A (K)`),

		// Explicit transactions. The committed-state snapshots only move
		// at COMMIT, so a fault anywhere inside a transaction must
		// recover to a state without any of its writes. One transaction
		// commits, one rolls back, and one is still open when the
		// workload ends — the trailing crash points all land inside it.
		sqlStep(`BEGIN`),
		sqlStep(`INSERT INTO A VALUES (11, 'tx') DEGREE 0.5`),
		sqlStep(`INSERT INTO B VALUES (4, 40) DEGREE 0.375`),
		sqlStep(`COMMIT`),
		sqlStep(`BEGIN`),
		sqlStep(`INSERT INTO A VALUES (12, 'undone')`),
		sqlStep(`ROLLBACK`),
		sqlStep(`INSERT INTO A VALUES (13, 'x') DEGREE 0.25`),
		sqlStep(`BEGIN`),
		sqlStep(`INSERT INTO B VALUES (5, 50) DEGREE 0.625`),
		sqlStep(`INSERT INTO B VALUES (6, 60)`),
	}
}

// runCrashSteps executes the workload over fs, returning how many steps
// were acknowledged before the first error. A small buffer pool keeps
// eviction (and therefore the no-steal/WAL-sync interplay) in play.
func runCrashSteps(fs storage.FS, steps []crashStep, after func(*core.Session)) (acked int, err error) {
	sess, err := core.OpenSessionOptions("db", core.SessionOptions{BufferPages: 8, FS: fs})
	if err != nil {
		return 0, err
	}
	for _, st := range steps {
		if st.reopen {
			if err := sess.Close(); err != nil {
				return acked, err
			}
			sess, err = core.OpenSessionOptions("db", core.SessionOptions{BufferPages: 8, FS: fs})
			if err != nil {
				return acked, err
			}
		}
		if err := st.run(sess); err != nil {
			sess.Close()
			return acked, err
		}
		acked++
		if after != nil {
			after(sess)
		}
	}
	return acked, sess.Close()
}

// dbState is a logical snapshot: every relation's full contents.
type dbState map[string]*frel.Relation

// snapshotDB captures the committed contents of every relation — the
// state recovery reproduces. Mid-transaction snapshots therefore exclude
// the open transaction's appends, exactly as a crash would.
func snapshotDB(t *testing.T, s *core.Session) dbState {
	t.Helper()
	st := make(dbState)
	for _, name := range s.Catalog().Relations() {
		h, err := s.Catalog().Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := h.ReadCommitted()
		if err != nil {
			t.Fatal(err)
		}
		st[name] = rel
	}
	return st
}

// verifyIndexes checks every index the recovered catalog knows about
// against a from-scratch rebuild of its base relation: identical entries
// in the stable Definition 3.1 order. A maintained index is a sorted run
// plus a heap-position-ordered tail, so both sides are normalised by the
// same stable (begin, end, position) sort the serving path applies. An
// index lost to the crash (absent from the catalog) is acceptable; an
// inconsistent one is not.
func verifyIndexes(t *testing.T, s *core.Session, label string) {
	t.Helper()
	cat := s.Catalog()
	for _, name := range cat.Indexes() {
		ix, ok := cat.LookupIndex(name)
		if !ok {
			continue
		}
		h, err := cat.Relation(ix.Rel)
		if err != nil {
			t.Errorf("%s: index %s: base relation: %v", label, name, err)
			continue
		}
		rel, err := h.ReadCommitted()
		if err != nil {
			t.Errorf("%s: index %s: read base: %v", label, name, err)
			continue
		}
		want := make([]storage.IndexEntry, 0, rel.Len())
		for tid, tu := range rel.Tuples {
			e, ok := storage.IndexEntryFor(tu, ix.Pos(), uint64(tid))
			if !ok {
				t.Errorf("%s: index %s: tuple %d has no numeric value", label, name, tid)
				return
			}
			want = append(want, e)
		}
		got, err := storage.ReadIndexEntries(ix.Heap(), -1)
		if err != nil {
			t.Errorf("%s: index %s: read entries: %v", label, name, err)
			continue
		}
		sort.SliceStable(want, func(i, j int) bool { return storage.CompareEntries(want[i], want[j]) < 0 })
		sort.SliceStable(got, func(i, j int) bool { return storage.CompareEntries(got[i], got[j]) < 0 })
		if len(got) != len(want) {
			t.Errorf("%s: index %s has %d entries, rebuild has %d", label, name, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: index %s entry %d = %+v, rebuild has %+v", label, name, i, got[i], want[i])
				break
			}
		}
	}
}

// equal compares two snapshots exactly: same relations, same tuples in the
// same order, identical membership degrees (zero tolerance).
func (st dbState) equal(other dbState) bool {
	if len(st) != len(other) {
		return false
	}
	for name, rel := range st {
		o, ok := other[name]
		if !ok || !rel.Equal(o, 0) {
			return false
		}
	}
	return true
}

// String renders a snapshot for failure messages.
func (st dbState) String() string {
	out := ""
	for name, rel := range st {
		out += fmt.Sprintf("%s: %d tuples; ", name, rel.Len())
	}
	if out == "" {
		return "(empty)"
	}
	return out
}
