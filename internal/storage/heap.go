package storage

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/frel"
)

// Heap page layout:
//
//	[0:2]  uint16 record count
//	then records back to back, each: uint16 length + payload
//
// Records never span pages; the maximum record size is
// PageSize - pageHeader - recHeader bytes.
const (
	pageHeader = 2
	recHeader  = 2

	// MaxRecordSize is the largest serialized tuple a heap page can hold.
	MaxRecordSize = PageSize - pageHeader - recHeader
)

// HeapFile is an append-only file of serialized fuzzy tuples in page
// order. It is the on-disk representation of a fuzzy relation.
type HeapFile struct {
	Schema *frel.Schema
	pager  *Pager
	pool   *BufferPool

	numPages  int64
	numTuples int64

	// Append cursor.
	lastPage PageID
	lastUsed int // bytes used in the last page (including header)
	buf      []byte

	// version counts appends; caches keyed by a heap-file pointer (the
	// engine's sort-order cache) compare versions to detect staleness.
	version uint64

	// stats caches the planner statistics for statsVersion; Stats builds
	// them with one scan and Append then maintains them incrementally.
	stats        *frel.TableStats
	statsVersion uint64
}

// Stats returns the planner statistics of the file, built by a full scan
// on the first call (or after the cached statistics went stale) and then
// maintained incrementally by Append.
func (h *HeapFile) Stats() (*frel.TableStats, error) {
	if h.stats != nil && h.statsVersion == h.version {
		return h.stats, nil
	}
	ts := frel.NewTableStats(len(h.Schema.Attrs))
	sc := h.Scan()
	defer sc.Close()
	for {
		t, ok := sc.Next()
		if !ok {
			break
		}
		ts.Observe(t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	h.stats, h.statsVersion = ts, h.version
	return ts, nil
}

// Version returns the file's mutation counter.
func (h *HeapFile) Version() uint64 { return h.version }

// NewHeapFile creates an empty heap file backed by the given pager.
func NewHeapFile(schema *frel.Schema, pager *Pager, pool *BufferPool) *HeapFile {
	return &HeapFile{Schema: schema, pager: pager, pool: pool, lastPage: -1}
}

// RecoverHeapFile reconstructs a heap file over an existing pager (opened
// with OpenPagerExisting): it walks the page headers to recover the tuple
// count and the append cursor, so the file can be both scanned and
// appended to.
func RecoverHeapFile(schema *frel.Schema, pager *Pager, pool *BufferPool) (*HeapFile, error) {
	h := NewHeapFile(schema, pager, pool)
	h.numPages = pager.NumPages()
	if h.numPages == 0 {
		return h, nil
	}
	for pid := int64(0); pid < h.numPages; pid++ {
		f, err := pool.Get(pager, PageID(pid))
		if err != nil {
			return nil, err
		}
		count := int(binary.LittleEndian.Uint16(f.Data[0:2]))
		h.numTuples += int64(count)
		if pid == h.numPages-1 {
			// Recover the append cursor by walking the last page.
			off := pageHeader
			for i := 0; i < count; i++ {
				recLen := int(binary.LittleEndian.Uint16(f.Data[off:]))
				off += recHeader + recLen
				if off > PageSize {
					pool.Unpin(f, false)
					return nil, fmt.Errorf("storage: corrupt heap page %d: record overruns the page", pid)
				}
			}
			h.lastPage = PageID(pid)
			h.lastUsed = off
		}
		pool.Unpin(f, false)
	}
	return h, nil
}

// NumTuples returns the number of tuples appended so far.
func (h *HeapFile) NumTuples() int64 { return h.numTuples }

// NumPages returns the number of pages the file occupies.
func (h *HeapFile) NumPages() int64 { return h.numPages }

// Bytes returns the total size of the file in bytes.
func (h *HeapFile) Bytes() int64 { return h.numPages * PageSize }

// Pager returns the backing pager.
func (h *HeapFile) Pager() *Pager { return h.pager }

// Append serializes t and appends it to the file.
func (h *HeapFile) Append(t frel.Tuple) error {
	var err error
	h.buf, err = frel.AppendTuple(h.buf[:0], h.Schema, t)
	if err != nil {
		return err
	}
	rec := h.buf
	if len(rec) > MaxRecordSize {
		return fmt.Errorf("storage: tuple of %d bytes exceeds max record size %d", len(rec), MaxRecordSize)
	}
	need := recHeader + len(rec)
	if h.lastPage < 0 || h.lastUsed+need > PageSize {
		f, err := h.pool.NewPage(h.pager)
		if err != nil {
			return err
		}
		h.lastPage = f.ID
		h.lastUsed = pageHeader
		h.numPages++
		h.pool.Unpin(f, true)
	}
	f, err := h.pool.Get(h.pager, h.lastPage)
	if err != nil {
		return err
	}
	count := binary.LittleEndian.Uint16(f.Data[0:2])
	binary.LittleEndian.PutUint16(f.Data[h.lastUsed:], uint16(len(rec)))
	copy(f.Data[h.lastUsed+recHeader:], rec)
	binary.LittleEndian.PutUint16(f.Data[0:2], count+1)
	h.lastUsed += need
	h.numTuples++
	if h.stats != nil && h.statsVersion == h.version {
		h.stats.Observe(t)
		h.statsVersion = h.version + 1
	}
	h.version++
	h.pool.Unpin(f, true)
	return nil
}

// AppendAll appends every tuple of an in-memory relation.
func (h *HeapFile) AppendAll(r *frel.Relation) error {
	for _, t := range r.Tuples {
		if err := h.Append(t); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes any buffered dirty pages of this file to disk.
func (h *HeapFile) Flush() error {
	return h.pool.FlushAll()
}

// Drop flushes the pool's view of the file and deletes it.
func (h *HeapFile) Drop() error {
	if err := h.pool.DropPager(h.pager); err != nil {
		return err
	}
	return h.pager.Remove()
}

// Scanner iterates the tuples of a heap file in storage order through the
// buffer pool. It holds a pin on the current page only, so a scan touches
// each page once (the access pattern the paper's cost analysis assumes).
type Scanner struct {
	h       *HeapFile
	pageIdx int64
	frame   *Frame
	off     int
	remain  int // records remaining in the current page
	err     error
}

// Scan returns a scanner positioned before the first tuple.
func (h *HeapFile) Scan() *Scanner {
	return &Scanner{h: h}
}

// Next returns the next tuple. ok is false when the scan is exhausted or
// an error occurred; check Err afterwards.
func (s *Scanner) Next() (t frel.Tuple, ok bool) {
	for {
		if s.err != nil {
			return frel.Tuple{}, false
		}
		if s.frame == nil {
			if s.pageIdx >= s.h.numPages {
				return frel.Tuple{}, false
			}
			f, err := s.h.pool.Get(s.h.pager, PageID(s.pageIdx))
			if err != nil {
				s.err = err
				return frel.Tuple{}, false
			}
			s.frame = f
			s.remain = int(binary.LittleEndian.Uint16(f.Data[0:2]))
			s.off = pageHeader
		}
		if s.remain == 0 {
			s.h.pool.Unpin(s.frame, false)
			s.frame = nil
			s.pageIdx++
			continue
		}
		recLen := int(binary.LittleEndian.Uint16(s.frame.Data[s.off:]))
		payload := s.frame.Data[s.off+recHeader : s.off+recHeader+recLen]
		tup, _, err := frel.DecodeTuple(s.h.Schema, payload)
		if err != nil {
			s.err = err
			return frel.Tuple{}, false
		}
		s.off += recHeader + recLen
		s.remain--
		return tup, true
	}
}

// NextBatch fills dst (reset to length zero) with up to cap(dst) tuples
// and returns the filled slice. An empty result means the scan is
// exhausted or an error occurred; check Err afterwards. The returned
// slice aliases dst's backing array, so callers that retain tuples across
// calls must copy them out first.
func (s *Scanner) NextBatch(dst []frel.Tuple) []frel.Tuple {
	dst = dst[:0]
	for len(dst) < cap(dst) {
		t, ok := s.Next()
		if !ok {
			break
		}
		dst = append(dst, t)
	}
	return dst
}

// Close releases the scanner's page pin.
func (s *Scanner) Close() {
	if s.frame != nil {
		s.h.pool.Unpin(s.frame, false)
		s.frame = nil
	}
}

// Err returns the first error the scanner encountered, if any.
func (s *Scanner) Err() error { return s.err }

// ReadAll materializes the whole heap file as an in-memory relation.
func (h *HeapFile) ReadAll() (*frel.Relation, error) {
	r := frel.NewRelation(h.Schema)
	sc := h.Scan()
	defer sc.Close()
	for {
		t, ok := sc.Next()
		if !ok {
			break
		}
		r.Append(t)
	}
	return r, sc.Err()
}

// Manager creates heap files inside one directory, sharing a buffer pool
// and I/O statistics. It is the storage root of a database session.
type Manager struct {
	dir   string
	pool  *BufferPool
	stats *Stats

	mu  sync.Mutex // guards seq against concurrent CreateTemp calls
	seq int
}

// NewManager creates a manager over dir with a buffer pool of the given
// page capacity. dir must exist.
func NewManager(dir string, poolPages int) *Manager {
	stats := &Stats{}
	return &Manager{dir: dir, pool: NewBufferPool(poolPages, stats), stats: stats}
}

// Pool returns the shared buffer pool.
func (m *Manager) Pool() *BufferPool { return m.pool }

// Stats returns the shared I/O statistics.
func (m *Manager) Stats() *Stats { return m.stats }

// Dir returns the managed directory.
func (m *Manager) Dir() string { return m.dir }

// CreateHeap creates an empty heap file named name.heap in the managed
// directory.
func (m *Manager) CreateHeap(name string, schema *frel.Schema) (*HeapFile, error) {
	p, err := OpenPager(filepath.Join(m.dir, name+".heap"), m.stats)
	if err != nil {
		return nil, err
	}
	return NewHeapFile(schema, p, m.pool), nil
}

// OpenHeap reopens an existing heap file named name.heap in the managed
// directory, recovering its tuple count and append cursor.
func (m *Manager) OpenHeap(name string, schema *frel.Schema) (*HeapFile, error) {
	p, err := OpenPagerExisting(filepath.Join(m.dir, name+".heap"), m.stats)
	if err != nil {
		return nil, err
	}
	h, err := RecoverHeapFile(schema, p, m.pool)
	if err != nil {
		p.Close()
		return nil, err
	}
	return h, nil
}

// CreateTemp creates a uniquely named temporary heap file (for sort runs
// and materialized intermediates). Callers should Drop it when done.
func (m *Manager) CreateTemp(schema *frel.Schema) (*HeapFile, error) {
	m.mu.Lock()
	m.seq++
	seq := m.seq
	m.mu.Unlock()
	return m.CreateHeap(fmt.Sprintf("tmp-%06d", seq), schema)
}
