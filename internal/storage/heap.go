package storage

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/frel"
)

// Heap page layout:
//
//	[0:2]  uint16 record count
//	then records back to back, each: uint16 length + payload
//
// Records never span pages; the maximum record size is
// PageSize - pageHeader - recHeader bytes.
const (
	pageHeader = 2
	recHeader  = 2

	// MaxRecordSize is the largest serialized tuple a heap page can hold.
	MaxRecordSize = PageSize - pageHeader - recHeader
)

// HeapFile is an append-only file of serialized fuzzy tuples in page
// order. It is the on-disk representation of a fuzzy relation.
type HeapFile struct {
	Schema *frel.Schema
	pager  *Pager
	pool   *BufferPool

	// mgr and logName are set when the file is covered by the manager's
	// write-ahead log; appends are then logged before they touch pages and
	// the touched frames are pinned no-steal until commit. Temporary heaps
	// stay unlogged (logName empty).
	mgr     *Manager
	logName string

	numPages  int64
	numTuples int64

	// Append cursor.
	lastPage PageID
	lastUsed int // bytes used in the last page (including header)
	buf      []byte

	// version counts appends; caches keyed by a heap-file pointer (the
	// engine's sort-order cache) compare versions to detect staleness.
	version uint64

	// stats caches the planner statistics for statsVersion; Stats builds
	// them with one scan and Append then maintains them incrementally.
	// statsMu makes the memoization safe for concurrent readers (the
	// server plans read-only queries in parallel); mutations are already
	// serialized against all readers by the session layer.
	statsMu      sync.Mutex
	stats        *frel.TableStats
	statsVersion uint64
}

// Stats returns the planner statistics of the file, built by a full scan
// on the first call (or after the cached statistics went stale) and then
// maintained incrementally by Append.
func (h *HeapFile) Stats() (*frel.TableStats, error) {
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	if h.stats != nil && h.statsVersion == h.version {
		return h.stats, nil
	}
	ts := frel.NewTableStats(len(h.Schema.Attrs))
	sc := h.Scan()
	defer sc.Close()
	for {
		t, ok := sc.Next()
		if !ok {
			break
		}
		ts.Observe(t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	h.stats, h.statsVersion = ts, h.version
	return ts, nil
}

// Version returns the file's mutation counter.
func (h *HeapFile) Version() uint64 { return h.version }

// NewHeapFile creates an empty heap file backed by the given pager.
func NewHeapFile(schema *frel.Schema, pager *Pager, pool *BufferPool) *HeapFile {
	return &HeapFile{Schema: schema, pager: pager, pool: pool, lastPage: -1}
}

// RecoverHeapFile reconstructs a heap file over an existing pager (opened
// with OpenPagerExisting): it walks the page headers to recover the tuple
// count and the append cursor, so the file can be both scanned and
// appended to.
func RecoverHeapFile(schema *frel.Schema, pager *Pager, pool *BufferPool) (*HeapFile, error) {
	h := NewHeapFile(schema, pager, pool)
	h.numPages = pager.NumPages()
	if h.numPages == 0 {
		return h, nil
	}
	for pid := int64(0); pid < h.numPages; pid++ {
		f, err := pool.Get(pager, PageID(pid))
		if err != nil {
			return nil, err
		}
		count := int(binary.LittleEndian.Uint16(f.Data[0:2]))
		h.numTuples += int64(count)
		if pid == h.numPages-1 {
			// Recover the append cursor by walking the last page.
			off := pageHeader
			for i := 0; i < count; i++ {
				recLen := int(binary.LittleEndian.Uint16(f.Data[off:]))
				off += recHeader + recLen
				if off > PageSize {
					pool.Unpin(f, false)
					return nil, fmt.Errorf("storage: corrupt heap page %d: record overruns the page", pid)
				}
			}
			h.lastPage = PageID(pid)
			h.lastUsed = off
		}
		pool.Unpin(f, false)
	}
	return h, nil
}

// NumTuples returns the number of tuples appended so far.
func (h *HeapFile) NumTuples() int64 { return h.numTuples }

// NumPages returns the number of pages the file occupies.
func (h *HeapFile) NumPages() int64 { return h.numPages }

// Bytes returns the total size of the file in bytes.
func (h *HeapFile) Bytes() int64 { return h.numPages * PageSize }

// Pager returns the backing pager.
func (h *HeapFile) Pager() *Pager { return h.pager }

// Append serializes t and appends it to the file. On a logged heap the
// tuple bytes go to the write-ahead log first (inside the open transaction,
// or an autocommitted one) and the touched pages stay no-steal until the
// covering commit is durable.
func (h *HeapFile) Append(t frel.Tuple) error {
	var err error
	h.buf, err = frel.AppendTuple(h.buf[:0], h.Schema, t)
	if err != nil {
		return err
	}
	rec := h.buf
	if len(rec) > MaxRecordSize {
		return fmt.Errorf("storage: tuple of %d bytes exceeds max record size %d", len(rec), MaxRecordSize)
	}
	logged := h.logName != ""
	var auto *Tx
	if logged {
		tx := h.mgr.tx
		if tx == nil {
			if tx, err = h.mgr.Begin(); err != nil {
				return err
			}
			auto = tx
		}
		if err := h.mgr.wal.Append(tx.id, h.logName, h.numTuples, rec); err != nil {
			tx.abandon()
			return err
		}
	}
	need := recHeader + len(rec)
	if h.lastPage < 0 || h.lastUsed+need > PageSize {
		f, err := h.pool.NewPage(h.pager)
		if err != nil {
			return err
		}
		h.lastPage = f.ID
		h.lastUsed = pageHeader
		h.numPages++
		if logged {
			h.pool.MarkNoSteal(f)
		}
		h.pool.Unpin(f, true)
	}
	f, err := h.pool.Get(h.pager, h.lastPage)
	if err != nil {
		return err
	}
	count := binary.LittleEndian.Uint16(f.Data[0:2])
	binary.LittleEndian.PutUint16(f.Data[h.lastUsed:], uint16(len(rec)))
	copy(f.Data[h.lastUsed+recHeader:], rec)
	binary.LittleEndian.PutUint16(f.Data[0:2], count+1)
	h.lastUsed += need
	h.numTuples++
	h.statsMu.Lock()
	if h.stats != nil && h.statsVersion == h.version {
		h.stats.Observe(t)
		h.statsVersion = h.version + 1
	}
	h.statsMu.Unlock()
	h.version++
	if logged {
		h.pool.MarkNoSteal(f)
	}
	h.pool.Unpin(f, true)
	if auto != nil {
		return auto.Commit()
	}
	return nil
}

// AppendAll appends every tuple of an in-memory relation, as one
// transaction on a logged heap (one fsync for the whole batch).
func (h *HeapFile) AppendAll(r *frel.Relation) error {
	var auto *Tx
	if h.logName != "" && h.mgr.tx == nil {
		tx, err := h.mgr.Begin()
		if err != nil {
			return err
		}
		auto = tx
	}
	for _, t := range r.Tuples {
		if err := h.Append(t); err != nil {
			if auto != nil {
				auto.abandon()
			}
			return err
		}
	}
	if auto != nil {
		return auto.Commit()
	}
	return nil
}

// Flush writes any buffered dirty pages of this file to disk, forcing the
// write-ahead log first on a logged heap so no page overtakes its records.
func (h *HeapFile) Flush() error {
	if h.logName != "" {
		if err := h.mgr.wal.Sync(); err != nil {
			return err
		}
		h.pool.ClearNoSteal()
	}
	return h.pool.FlushAll()
}

// Sync flushes the backing file to stable storage.
func (h *HeapFile) Sync() error { return h.pager.Sync() }

// Drop flushes the pool's view of the file and deletes it. A logged heap
// is first unregistered and checkpointed away, so that after the file is
// gone no log record or checkpoint base references it.
func (h *HeapFile) Drop() error {
	if h.logName != "" {
		h.mgr.unregister(h.logName)
		h.logName = ""
		if err := h.mgr.Checkpoint(); err != nil {
			return err
		}
	}
	if err := h.pool.DropPager(h.pager); err != nil {
		return err
	}
	return h.pager.Remove()
}

// Scanner iterates the tuples of a heap file in storage order through the
// buffer pool. It holds a pin on the current page only, so a scan touches
// each page once (the access pattern the paper's cost analysis assumes).
type Scanner struct {
	h       *HeapFile
	pageIdx int64
	frame   *Frame
	off     int
	remain  int // records remaining in the current page
	err     error
}

// Scan returns a scanner positioned before the first tuple.
func (h *HeapFile) Scan() *Scanner {
	return &Scanner{h: h}
}

// Next returns the next tuple. ok is false when the scan is exhausted or
// an error occurred; check Err afterwards.
func (s *Scanner) Next() (t frel.Tuple, ok bool) {
	for {
		if s.err != nil {
			return frel.Tuple{}, false
		}
		if s.frame == nil {
			if s.pageIdx >= s.h.numPages {
				return frel.Tuple{}, false
			}
			f, err := s.h.pool.Get(s.h.pager, PageID(s.pageIdx))
			if err != nil {
				s.err = err
				return frel.Tuple{}, false
			}
			s.frame = f
			s.remain = int(binary.LittleEndian.Uint16(f.Data[0:2]))
			s.off = pageHeader
		}
		if s.remain == 0 {
			s.h.pool.Unpin(s.frame, false)
			s.frame = nil
			s.pageIdx++
			continue
		}
		recLen := int(binary.LittleEndian.Uint16(s.frame.Data[s.off:]))
		payload := s.frame.Data[s.off+recHeader : s.off+recHeader+recLen]
		tup, _, err := frel.DecodeTuple(s.h.Schema, payload)
		if err != nil {
			s.err = err
			return frel.Tuple{}, false
		}
		s.off += recHeader + recLen
		s.remain--
		return tup, true
	}
}

// NextBatch fills dst (reset to length zero) with up to cap(dst) tuples
// and returns the filled slice. An empty result means the scan is
// exhausted or an error occurred; check Err afterwards. The returned
// slice aliases dst's backing array, so callers that retain tuples across
// calls must copy them out first.
func (s *Scanner) NextBatch(dst []frel.Tuple) []frel.Tuple {
	dst = dst[:0]
	for len(dst) < cap(dst) {
		t, ok := s.Next()
		if !ok {
			break
		}
		dst = append(dst, t)
	}
	return dst
}

// Close releases the scanner's page pin.
func (s *Scanner) Close() {
	if s.frame != nil {
		s.h.pool.Unpin(s.frame, false)
		s.frame = nil
	}
}

// Err returns the first error the scanner encountered, if any.
func (s *Scanner) Err() error { return s.err }

// ReadAll materializes the whole heap file as an in-memory relation.
func (h *HeapFile) ReadAll() (*frel.Relation, error) {
	r := frel.NewRelation(h.Schema)
	sc := h.Scan()
	defer sc.Close()
	for {
		t, ok := sc.Next()
		if !ok {
			break
		}
		r.Append(t)
	}
	return r, sc.Err()
}

// Manager creates heap files inside one directory, sharing a buffer pool
// and I/O statistics. It is the storage root of a database session. With
// the write-ahead log enabled (ManagerOptions.WAL), opening the manager
// replays any log left by a crash, every non-temporary heap is logged, and
// Checkpoint/Begin become meaningful.
type Manager struct {
	dir   string
	fs    FS
	pool  *BufferPool
	stats *Stats
	wal   *WAL

	mu    sync.Mutex // guards seq and heaps
	seq   int
	heaps map[string]*HeapFile // logged heaps by log name

	tx *Tx // the open transaction, if any (sessions are single-threaded)
}

// ManagerOptions configures NewManagerOptions.
type ManagerOptions struct {
	// PoolPages is the buffer pool capacity in pages.
	PoolPages int
	// FS overrides the file system (default: the real one). Tests inject
	// FaultFS or MemFS here.
	FS FS
	// WAL enables write-ahead logging: recovery on open, logged appends,
	// and durable commits.
	WAL bool
	// GroupCommitWindow is how long a commit waits for other transactions
	// to share its fsync; 0 syncs immediately.
	GroupCommitWindow time.Duration
}

// NewManager creates a manager over dir with a buffer pool of the given
// page capacity and no write-ahead log. dir must exist.
func NewManager(dir string, poolPages int) *Manager {
	m, err := NewManagerOptions(dir, ManagerOptions{PoolPages: poolPages})
	if err != nil {
		// Unreachable: without WAL there is no fallible setup work.
		panic(err)
	}
	return m
}

// NewManagerOptions creates a manager over dir. With opts.WAL it first
// recovers the directory from any existing log (redoing committed work,
// discarding the rest) and starts a fresh log checkpointed at the
// recovered state.
func NewManagerOptions(dir string, opts ManagerOptions) (*Manager, error) {
	fs := opts.FS
	if fs == nil {
		fs = OsFS{}
	}
	stats := &Stats{}
	m := &Manager{
		dir:   dir,
		fs:    fs,
		pool:  NewBufferPool(opts.PoolPages, stats),
		stats: stats,
		heaps: make(map[string]*HeapFile),
	}
	if opts.WAL {
		w, err := openWAL(fs, dir, opts.GroupCommitWindow)
		if err != nil {
			return nil, err
		}
		m.wal = w
		m.pool.SetRelease(w.Sync)
	}
	return m, nil
}

// Pool returns the shared buffer pool.
func (m *Manager) Pool() *BufferPool { return m.pool }

// Stats returns the shared I/O statistics.
func (m *Manager) Stats() *Stats { return m.stats }

// Dir returns the managed directory.
func (m *Manager) Dir() string { return m.dir }

// FS returns the file system the manager performs I/O through.
func (m *Manager) FS() FS { return m.fs }

// WALEnabled reports whether the manager write-ahead logs its heaps.
func (m *Manager) WALEnabled() bool { return m.wal != nil }

// HeapPath returns the path of the heap file that backs (or would back)
// the relation with the given storage name.
func (m *Manager) HeapPath(name string) string {
	return filepath.Join(m.dir, name+".heap")
}

// register marks h as covered by the write-ahead log, unless logging is
// off or the heap is temporary.
func (m *Manager) register(name string, h *HeapFile) {
	if m.wal == nil || strings.HasPrefix(name, "tmp-") {
		return
	}
	h.mgr = m
	h.logName = name
	m.mu.Lock()
	m.heaps[name] = h
	m.mu.Unlock()
}

func (m *Manager) unregister(name string) {
	m.mu.Lock()
	delete(m.heaps, name)
	m.mu.Unlock()
}

// CreateHeap creates an empty heap file named name.heap in the managed
// directory.
func (m *Manager) CreateHeap(name string, schema *frel.Schema) (*HeapFile, error) {
	p, err := OpenPagerFS(m.fs, m.HeapPath(name), m.stats)
	if err != nil {
		return nil, err
	}
	h := NewHeapFile(schema, p, m.pool)
	m.register(name, h)
	return h, nil
}

// OpenHeap reopens an existing heap file named name.heap in the managed
// directory, recovering its tuple count and append cursor.
func (m *Manager) OpenHeap(name string, schema *frel.Schema) (*HeapFile, error) {
	p, err := OpenPagerExistingFS(m.fs, m.HeapPath(name), m.stats)
	if err != nil {
		return nil, err
	}
	h, err := RecoverHeapFile(schema, p, m.pool)
	if err != nil {
		p.Close()
		return nil, err
	}
	m.register(name, h)
	return h, nil
}

// Tx is an open transaction: a group of appends that commits atomically.
// The engine has no rollback — a transaction that never commits simply
// does not survive recovery. A Tx from a manager without a WAL is a no-op.
type Tx struct {
	m    *Manager
	id   uint64
	done bool
}

// Begin opens a transaction. Only one transaction may be open at a time;
// appends outside any transaction autocommit individually.
func (m *Manager) Begin() (*Tx, error) {
	if m.wal == nil {
		return &Tx{}, nil
	}
	if m.tx != nil {
		return nil, fmt.Errorf("storage: transaction already open")
	}
	id, err := m.wal.Begin()
	if err != nil {
		return nil, err
	}
	tx := &Tx{m: m, id: id}
	m.tx = tx
	return tx, nil
}

// Commit makes the transaction's appends durable: it logs the commit
// record, fsyncs the log (sharing the fsync with concurrent commits inside
// the group-commit window), and releases the no-steal pins.
func (tx *Tx) Commit() error {
	if tx.m == nil || tx.done {
		tx.done = true
		return nil
	}
	tx.done = true
	tx.m.tx = nil
	if err := tx.m.wal.Commit(tx.id); err != nil {
		return err
	}
	tx.m.pool.ClearNoSteal()
	return nil
}

// abandon closes the transaction without a commit record: recovery will
// discard its appends. Used on append failure, where the session is not
// expected to survive.
func (tx *Tx) abandon() {
	if tx.m == nil || tx.done {
		tx.done = true
		return
	}
	tx.done = true
	tx.m.tx = nil
}

// Checkpoint makes every relation durable in its heap file and truncates
// the write-ahead log: log, then pages, then page files, then the new
// single-checkpoint log swapped in by an atomic rename. No transaction may
// be open. Without a WAL it is a no-op.
func (m *Manager) Checkpoint() error {
	if m.wal == nil {
		return nil
	}
	if m.tx != nil {
		return fmt.Errorf("storage: checkpoint with open transaction")
	}
	if err := m.wal.Sync(); err != nil {
		return err
	}
	if err := m.pool.FlushAll(); err != nil {
		return err
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.heaps))
	for n := range m.heaps {
		names = append(names, n)
	}
	m.mu.Unlock()
	sort.Strings(names)
	states := make([]heapState, 0, len(names))
	for _, n := range names {
		m.mu.Lock()
		h := m.heaps[n]
		m.mu.Unlock()
		if err := h.Sync(); err != nil {
			return err
		}
		st, err := h.state()
		if err != nil {
			return err
		}
		states = append(states, st)
	}
	m.pool.ClearNoSteal()
	return m.wal.rewrite(states)
}

// state captures the heap's current durable geometry for a checkpoint
// record. The caller has flushed and synced the file.
func (h *HeapFile) state() (heapState, error) {
	st := heapState{
		name:      h.logName,
		numPages:  h.numPages,
		numTuples: h.numTuples,
	}
	if h.numPages > 0 {
		st.lastUsed = h.lastUsed
		f, err := h.pool.Get(h.pager, h.lastPage)
		if err != nil {
			return heapState{}, err
		}
		st.lastPage = append([]byte(nil), f.Data...)
		h.pool.Unpin(f, false)
	}
	return st, nil
}

// Close releases the manager's file handles: the write-ahead log and every
// registered heap. It does not checkpoint — the log replays on next open —
// and must not be used concurrently with other manager calls.
func (m *Manager) Close() error {
	var first error
	m.mu.Lock()
	heaps := make([]*HeapFile, 0, len(m.heaps))
	for _, h := range m.heaps {
		heaps = append(heaps, h)
	}
	m.mu.Unlock()
	for _, h := range heaps {
		if err := h.pager.Close(); err != nil && first == nil {
			first = err
		}
	}
	if m.wal != nil {
		if err := m.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CreateTemp creates a uniquely named temporary heap file (for sort runs
// and materialized intermediates). Callers should Drop it when done.
func (m *Manager) CreateTemp(schema *frel.Schema) (*HeapFile, error) {
	m.mu.Lock()
	m.seq++
	seq := m.seq
	m.mu.Unlock()
	return m.CreateHeap(fmt.Sprintf("tmp-%06d", seq), schema)
}
