package storage

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frel"
)

// Heap page layout:
//
//	[0:2]  uint16 record count
//	then records back to back, each: uint16 length + payload
//
// Records never span pages; the maximum record size is
// PageSize - pageHeader - recHeader bytes.
const (
	pageHeader = 2
	recHeader  = 2

	// MaxRecordSize is the largest serialized tuple a heap page can hold.
	MaxRecordSize = PageSize - pageHeader - recHeader
)

// HeapFile is an append-only file of serialized fuzzy tuples in page
// order. It is the on-disk representation of a fuzzy relation.
type HeapFile struct {
	Schema *frel.Schema
	pager  *Pager
	pool   *BufferPool

	// mgr and logName are set when the file is covered by the manager's
	// write-ahead log; appends are then logged before they touch pages and
	// the touched frames are pinned no-steal until commit. Temporary heaps
	// stay unlogged (logName empty).
	mgr     *Manager
	logName string

	// tempMgr is set on manager-created temporary heaps: Drop offers the
	// file back to that manager's recycle pool instead of unlinking it,
	// so the next CreateTemp skips the create-file syscall.
	tempMgr *Manager

	// Geometry counters are atomic: the single writer mutates them while
	// snapshot readers load them to bound scans and validate caches.
	numPages  atomic.Int64
	numTuples atomic.Int64

	// committed is the tuple count as of the last commit publication, and
	// committedVer the mutation counter at that point. Together they are
	// the MVCC visibility horizon: a snapshot reader sees exactly the
	// first committed tuples (heaps are append-only, so a prefix is a
	// consistent state). Published under Manager.commitMu.
	committed    atomic.Int64
	committedVer atomic.Uint64

	// Append cursor, touched only by the single writer.
	lastPage PageID
	lastUsed int // bytes used in the last page (including header)
	buf      []byte

	// version counts mutations (appends and rollbacks); caches keyed by a
	// heap-file pointer (the engine's sort-order cache) compare versions
	// to detect staleness.
	version atomic.Uint64

	// stats caches the planner statistics for statsVersion; Stats builds
	// them with one scan and Append then maintains them incrementally.
	// statsMu makes the memoization safe for concurrent readers (the
	// server plans read-only queries in parallel).
	statsMu      sync.Mutex
	stats        *frel.TableStats
	statsVersion uint64
}

// Stats returns the planner statistics of the file, built by a full scan
// on the first call (or after the cached statistics went stale) and then
// maintained incrementally by Append.
func (h *HeapFile) Stats() (*frel.TableStats, error) {
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	ts, err := h.statsLocked()
	if err != nil {
		return nil, err
	}
	return ts, nil
}

// StatsSnapshot returns an independent copy of the planner statistics,
// safe to hold across statements while the writer keeps appending (the
// shared object returned by Stats is mutated incrementally by Append).
// Estimates may include uncommitted rows; the planner only uses them for
// costing, never for answers.
func (h *HeapFile) StatsSnapshot() (*frel.TableStats, error) {
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	ts, err := h.statsLocked()
	if err != nil {
		return nil, err
	}
	return ts.Clone(), nil
}

func (h *HeapFile) statsLocked() (*frel.TableStats, error) {
	if h.stats != nil && h.statsVersion == h.version.Load() {
		return h.stats, nil
	}
	ts := frel.NewTableStats(len(h.Schema.Attrs))
	sc := h.Scan()
	defer sc.Close()
	for {
		t, ok := sc.Next()
		if !ok {
			break
		}
		ts.Observe(t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	h.stats, h.statsVersion = ts, h.version.Load()
	return ts, nil
}

// Version returns the file's mutation counter.
func (h *HeapFile) Version() uint64 { return h.version.Load() }

// CommittedTuples returns the number of tuples visible to a snapshot taken
// now: the count as of the last commit publication.
func (h *HeapFile) CommittedTuples() int64 { return h.committed.Load() }

// CommittedVersion returns the mutation counter as of the last commit
// publication.
func (h *HeapFile) CommittedVersion() uint64 { return h.committedVer.Load() }

// NewHeapFile creates an empty heap file backed by the given pager.
func NewHeapFile(schema *frel.Schema, pager *Pager, pool *BufferPool) *HeapFile {
	return &HeapFile{Schema: schema, pager: pager, pool: pool, lastPage: -1}
}

// RecoverHeapFile reconstructs a heap file over an existing pager (opened
// with OpenPagerExisting): it walks the page headers to recover the tuple
// count and the append cursor, so the file can be both scanned and
// appended to.
func RecoverHeapFile(schema *frel.Schema, pager *Pager, pool *BufferPool) (*HeapFile, error) {
	h := NewHeapFile(schema, pager, pool)
	numPages := pager.NumPages()
	h.numPages.Store(numPages)
	if numPages == 0 {
		return h, nil
	}
	var numTuples int64
	for pid := int64(0); pid < numPages; pid++ {
		f, err := pool.Get(pager, PageID(pid))
		if err != nil {
			return nil, err
		}
		count := int(binary.LittleEndian.Uint16(f.Data[0:2]))
		numTuples += int64(count)
		if pid == numPages-1 {
			// Recover the append cursor by walking the last page.
			off := pageHeader
			for i := 0; i < count; i++ {
				recLen := int(binary.LittleEndian.Uint16(f.Data[off:]))
				off += recHeader + recLen
				if off > PageSize {
					pool.Unpin(f, false)
					return nil, fmt.Errorf("storage: corrupt heap page %d: record overruns the page", pid)
				}
			}
			h.lastPage = PageID(pid)
			h.lastUsed = off
		}
		pool.Unpin(f, false)
	}
	h.numTuples.Store(numTuples)
	// Everything on disk after recovery is committed work.
	h.committed.Store(numTuples)
	return h, nil
}

// NumTuples returns the number of tuples appended so far.
func (h *HeapFile) NumTuples() int64 { return h.numTuples.Load() }

// NumPages returns the number of pages the file occupies.
func (h *HeapFile) NumPages() int64 { return h.numPages.Load() }

// Bytes returns the total size of the file in bytes.
func (h *HeapFile) Bytes() int64 { return h.numPages.Load() * PageSize }

// Pager returns the backing pager.
func (h *HeapFile) Pager() *Pager { return h.pager }

// Append serializes t and appends it to the file. On a logged heap the
// tuple bytes go to the write-ahead log first (inside the open transaction,
// or an autocommitted one) and the touched pages stay no-steal until the
// covering commit is durable.
func (h *HeapFile) Append(t frel.Tuple) error {
	var err error
	h.buf, err = frel.AppendTuple(h.buf[:0], h.Schema, t)
	if err != nil {
		return err
	}
	return h.appendRecord(h.buf, &t)
}

// AppendRaw appends an already-serialized record. It is the append entry
// point for files whose records are not tuples (order-index entries): the
// bytes go through the same write-ahead-log, page-write, and commit path
// as Append, but no tuple-level bookkeeping (planner statistics) runs.
func (h *HeapFile) AppendRaw(rec []byte) error {
	return h.appendRecord(rec, nil)
}

// appendRecord appends one serialized record. t, when non-nil, is the
// decoded tuple the record encodes, used to maintain incremental planner
// statistics; raw (non-tuple) appends pass nil.
func (h *HeapFile) appendRecord(rec []byte, t *frel.Tuple) error {
	if len(rec) > MaxRecordSize {
		return fmt.Errorf("storage: record of %d bytes exceeds max record size %d", len(rec), MaxRecordSize)
	}
	logged := h.logName != ""
	var auto *Tx
	var err error
	if logged {
		tx := h.mgr.tx
		if tx == nil {
			if tx, err = h.mgr.Begin(); err != nil {
				return err
			}
			auto = tx
		}
		// On failure an autocommit or untracked transaction is abandoned
		// (recovery discards it); a tracked transaction is left open so the
		// session can Rollback, restoring the in-memory state of heaps its
		// earlier statements already mutated.
		if err := tx.touch(h); err != nil {
			if !tx.tracked {
				tx.abandon()
			}
			return err
		}
		if err := h.mgr.wal.Append(tx.id, h.logName, h.numTuples.Load(), rec); err != nil {
			if !tx.tracked {
				tx.abandon()
			}
			return err
		}
	}
	need := recHeader + len(rec)
	if h.lastPage < 0 || h.lastUsed+need > PageSize {
		f, err := h.pool.NewPage(h.pager)
		if err != nil {
			return err
		}
		h.lastPage = f.ID
		h.lastUsed = pageHeader
		h.numPages.Add(1)
		if logged {
			h.pool.MarkNoSteal(f)
		}
		h.pool.Unpin(f, true)
	}
	f, err := h.pool.Get(h.pager, h.lastPage)
	if err != nil {
		return err
	}
	f.Latch.Lock()
	count := binary.LittleEndian.Uint16(f.Data[0:2])
	binary.LittleEndian.PutUint16(f.Data[h.lastUsed:], uint16(len(rec)))
	copy(f.Data[h.lastUsed+recHeader:], rec)
	binary.LittleEndian.PutUint16(f.Data[0:2], count+1)
	f.Latch.Unlock()
	h.lastUsed += need
	h.numTuples.Add(1)
	if t != nil {
		h.statsMu.Lock()
		v := h.version.Load()
		if h.stats != nil && h.statsVersion == v {
			h.stats.Observe(*t)
			h.statsVersion = v + 1
		}
		h.statsMu.Unlock()
	}
	h.version.Add(1)
	if logged {
		h.pool.MarkNoSteal(f)
	}
	h.pool.Unpin(f, true)
	if auto != nil {
		return auto.Commit()
	}
	return nil
}

// AppendAll appends every tuple of an in-memory relation, as one
// transaction on a logged heap (one fsync for the whole batch).
func (h *HeapFile) AppendAll(r *frel.Relation) error {
	var auto *Tx
	if h.logName != "" && h.mgr.tx == nil {
		tx, err := h.mgr.Begin()
		if err != nil {
			return err
		}
		auto = tx
	}
	for _, t := range r.Tuples {
		if err := h.Append(t); err != nil {
			if auto != nil {
				auto.abandon()
			}
			return err
		}
	}
	if auto != nil {
		return auto.Commit()
	}
	return nil
}

// Flush writes any buffered dirty pages of this file to disk, forcing the
// write-ahead log first on a logged heap so no page overtakes its records.
func (h *HeapFile) Flush() error {
	if h.logName != "" {
		if err := h.mgr.wal.Sync(); err != nil {
			return err
		}
		h.pool.ClearNoSteal()
	}
	return h.pool.FlushAll()
}

// Sync flushes the backing file to stable storage.
func (h *HeapFile) Sync() error { return h.pager.Sync() }

// Drop deletes the file. A logged heap is first unregistered and
// checkpointed away, so that after the file is gone no log record or
// checkpoint base references it. A manager-created temp is offered back
// to the manager's recycle pool instead of unlinked; either way its
// dirty frames are discarded without write-back — flushing pages of a
// dead file would be wasted I/O.
func (h *HeapFile) Drop() error {
	if h.logName != "" {
		h.mgr.unregister(h.logName)
		h.logName = ""
		if err := h.mgr.Checkpoint(); err != nil {
			return err
		}
	}
	if h.tempMgr != nil {
		if err := h.pool.DiscardPager(h.pager); err != nil {
			return err
		}
		if h.tempMgr.recycleTemp(h) {
			return nil
		}
		return h.pager.Remove()
	}
	if err := h.pool.DropPager(h.pager); err != nil {
		return err
	}
	return h.pager.Remove()
}

// resetTemp readies a recycled temp heap for reuse under a new schema:
// geometry and append cursor reset, stale pool frames already discarded
// by Drop. The backing file keeps its length — reused pages are always
// rewritten through the pool before any read can reach them.
func (h *HeapFile) resetTemp(schema *frel.Schema) {
	h.Schema = schema
	h.numPages.Store(0)
	h.numTuples.Store(0)
	h.committed.Store(0)
	h.committedVer.Store(0)
	h.lastPage = -1
	h.lastUsed = 0
	h.version.Add(1)
	h.statsMu.Lock()
	h.stats = nil
	h.statsMu.Unlock()
	h.pager.Reset()
}

// Scanner iterates the tuples of a heap file in storage order through the
// buffer pool, touching each page once (the access pattern the paper's
// cost analysis assumes).
//
// A scanner may run concurrently with the single writer: the page count is
// captured at creation and each page's bytes are copied out under one
// frame-latch acquisition, so record decoding runs lock-free on a private
// snapshot of the page. A bounded scanner (ScanAt) additionally stops at
// its snapshot's tuple count, so it only ever decodes records that were
// committed, and thus fully written, when the snapshot was taken.
type Scanner struct {
	h       *HeapFile
	pages   int64 // page count captured at creation
	limit   int64 // tuples still to return; -1 = unbounded
	pageIdx int64
	page    []byte // copy of the current page; nil before the first page
	inPage  bool   // a page copy is loaded and not yet exhausted
	off     int
	remain  int // records remaining in the current page
	err     error
}

// Scan returns a scanner positioned before the first tuple, reading
// through the end of the file.
func (h *HeapFile) Scan() *Scanner {
	return &Scanner{h: h, pages: h.numPages.Load(), limit: -1}
}

// ScanAt returns a scanner over the first limit tuples only — the
// snapshot-read entry point: a reader that captured a committed tuple
// count sees exactly that prefix, regardless of what the writer appends
// (or rolls back) meanwhile.
func (h *HeapFile) ScanAt(limit int64) *Scanner {
	return &Scanner{h: h, pages: h.numPages.Load(), limit: limit}
}

// Next returns the next tuple. ok is false when the scan is exhausted or
// an error occurred; check Err afterwards.
func (s *Scanner) Next() (t frel.Tuple, ok bool) {
	for {
		if s.err != nil || s.limit == 0 {
			return frel.Tuple{}, false
		}
		if !s.inPage {
			if s.pageIdx >= s.pages {
				return frel.Tuple{}, false
			}
			f, err := s.h.pool.Get(s.h.pager, PageID(s.pageIdx))
			if err != nil {
				s.err = err
				return frel.Tuple{}, false
			}
			if s.page == nil {
				s.page = make([]byte, PageSize)
			}
			f.Latch.RLock()
			copy(s.page, f.Data)
			f.Latch.RUnlock()
			s.h.pool.Unpin(f, false)
			s.inPage = true
			s.remain = int(binary.LittleEndian.Uint16(s.page[0:2]))
			s.off = pageHeader
		}
		if s.remain == 0 {
			s.inPage = false
			s.pageIdx++
			continue
		}
		recLen := int(binary.LittleEndian.Uint16(s.page[s.off:]))
		tup, _, err := frel.DecodeTuple(s.h.Schema, s.page[s.off+recHeader:s.off+recHeader+recLen])
		if err != nil {
			s.err = err
			return frel.Tuple{}, false
		}
		s.off += recHeader + recLen
		s.remain--
		if s.limit > 0 {
			s.limit--
		}
		return tup, true
	}
}

// NextRaw returns the next record's raw bytes without decoding them as a
// tuple — the scan entry point for non-tuple files (order indexes). The
// returned slice aliases the scanner's private page copy and is valid only
// until the next NextRaw/Next call.
func (s *Scanner) NextRaw() ([]byte, bool) {
	for {
		if s.err != nil || s.limit == 0 {
			return nil, false
		}
		if !s.inPage {
			if s.pageIdx >= s.pages {
				return nil, false
			}
			f, err := s.h.pool.Get(s.h.pager, PageID(s.pageIdx))
			if err != nil {
				s.err = err
				return nil, false
			}
			if s.page == nil {
				s.page = make([]byte, PageSize)
			}
			f.Latch.RLock()
			copy(s.page, f.Data)
			f.Latch.RUnlock()
			s.h.pool.Unpin(f, false)
			s.inPage = true
			s.remain = int(binary.LittleEndian.Uint16(s.page[0:2]))
			s.off = pageHeader
		}
		if s.remain == 0 {
			s.inPage = false
			s.pageIdx++
			continue
		}
		recLen := int(binary.LittleEndian.Uint16(s.page[s.off:]))
		if s.off+recHeader+recLen > PageSize {
			s.err = fmt.Errorf("storage: corrupt heap page %d: record overruns the page", s.pageIdx)
			return nil, false
		}
		rec := s.page[s.off+recHeader : s.off+recHeader+recLen]
		s.off += recHeader + recLen
		s.remain--
		if s.limit > 0 {
			s.limit--
		}
		return rec, true
	}
}

// NextBatch fills dst (reset to length zero) with up to cap(dst) tuples
// and returns the filled slice. An empty result means the scan is
// exhausted or an error occurred; check Err afterwards. The returned
// slice aliases dst's backing array, so callers that retain tuples across
// calls must copy them out first.
func (s *Scanner) NextBatch(dst []frel.Tuple) []frel.Tuple {
	dst = dst[:0]
	for len(dst) < cap(dst) {
		t, ok := s.Next()
		if !ok {
			break
		}
		dst = append(dst, t)
	}
	return dst
}

// Close releases the scanner's resources. The scanner pins each page only
// while copying it out, so there is nothing pinned to release; Close is
// kept for symmetry and forward compatibility.
func (s *Scanner) Close() {
	s.inPage = false
	s.page = nil
}

// Err returns the first error the scanner encountered, if any.
func (s *Scanner) Err() error { return s.err }

// ReadAll materializes the whole heap file as an in-memory relation.
func (h *HeapFile) ReadAll() (*frel.Relation, error) {
	return h.readScanner(h.Scan())
}

// ReadCommitted materializes the committed prefix of the heap file — the
// state a fresh snapshot would see, excluding any open transaction's
// appends.
func (h *HeapFile) ReadCommitted() (*frel.Relation, error) {
	return h.readScanner(h.ScanAt(h.committed.Load()))
}

func (h *HeapFile) readScanner(sc *Scanner) (*frel.Relation, error) {
	r := frel.NewRelation(h.Schema)
	defer sc.Close()
	for {
		t, ok := sc.Next()
		if !ok {
			break
		}
		r.Append(t)
	}
	return r, sc.Err()
}

// Manager creates heap files inside one directory, sharing a buffer pool
// and I/O statistics. It is the storage root of a database session. With
// the write-ahead log enabled (ManagerOptions.WAL), opening the manager
// replays any log left by a crash, every non-temporary heap is logged, and
// Checkpoint/Begin become meaningful.
type Manager struct {
	dir   string
	fs    FS
	pool  *BufferPool
	stats *Stats
	wal   *WAL

	mu    sync.Mutex // guards seq, heaps, and tempFree
	seq   int
	heaps map[string]*HeapFile // logged heaps by log name

	// tempFree holds dropped temporary heaps ready for reuse. Their
	// backing files stay on disk with stale contents and reset geometry,
	// so a recycling CreateTemp skips the create-file syscall and the Drop
	// that fed the pool skipped the unlink — per cold external sort that
	// removes dozens of file-system operations for the run files alone.
	tempFree []*HeapFile

	tx *Tx // the open transaction, if any (writers are serialized above)

	// commitMu serializes commit publication (updating every touched
	// heap's committed counters) against Snapshot, so a snapshot is never
	// a torn view of a half-published commit.
	commitMu sync.Mutex
}

// HeapSnap is one heap's visibility horizon inside a snapshot: the
// committed tuple count and the mutation counter it corresponds to.
type HeapSnap struct {
	Tuples  int64
	Version uint64
}

// Snapshot captures the committed state of every logged heap as an
// atomic cut: a reader scanning each heap with ScanAt(snap.Tuples) sees a
// consistent committed database state, including all-or-nothing
// transaction visibility. Returns nil without a WAL (no snapshot reads).
func (m *Manager) Snapshot() map[*HeapFile]HeapSnap {
	if m.wal == nil {
		return nil
	}
	m.mu.Lock()
	heaps := make([]*HeapFile, 0, len(m.heaps))
	for _, h := range m.heaps {
		heaps = append(heaps, h)
	}
	m.mu.Unlock()
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	snap := make(map[*HeapFile]HeapSnap, len(heaps))
	for _, h := range heaps {
		snap[h] = HeapSnap{Tuples: h.committed.Load(), Version: h.committedVer.Load()}
	}
	return snap
}

// ManagerOptions configures NewManagerOptions.
type ManagerOptions struct {
	// PoolPages is the buffer pool capacity in pages.
	PoolPages int
	// FS overrides the file system (default: the real one). Tests inject
	// FaultFS or MemFS here.
	FS FS
	// WAL enables write-ahead logging: recovery on open, logged appends,
	// and durable commits.
	WAL bool
	// GroupCommitWindow is how long a commit waits for other transactions
	// to share its fsync; 0 syncs immediately.
	GroupCommitWindow time.Duration
}

// NewManager creates a manager over dir with a buffer pool of the given
// page capacity and no write-ahead log. dir must exist.
func NewManager(dir string, poolPages int) *Manager {
	m, err := NewManagerOptions(dir, ManagerOptions{PoolPages: poolPages})
	if err != nil {
		// Unreachable: without WAL there is no fallible setup work.
		panic(err)
	}
	return m
}

// NewManagerOptions creates a manager over dir. With opts.WAL it first
// recovers the directory from any existing log (redoing committed work,
// discarding the rest) and starts a fresh log checkpointed at the
// recovered state.
func NewManagerOptions(dir string, opts ManagerOptions) (*Manager, error) {
	fs := opts.FS
	if fs == nil {
		fs = OsFS{}
	}
	stats := &Stats{}
	m := &Manager{
		dir:   dir,
		fs:    fs,
		pool:  NewBufferPool(opts.PoolPages, stats),
		stats: stats,
		heaps: make(map[string]*HeapFile),
	}
	if opts.WAL {
		w, err := openWAL(fs, dir, opts.GroupCommitWindow)
		if err != nil {
			return nil, err
		}
		m.wal = w
		m.pool.SetRelease(w.Sync)
	}
	return m, nil
}

// Pool returns the shared buffer pool.
func (m *Manager) Pool() *BufferPool { return m.pool }

// Stats returns the shared I/O statistics.
func (m *Manager) Stats() *Stats { return m.stats }

// Dir returns the managed directory.
func (m *Manager) Dir() string { return m.dir }

// FS returns the file system the manager performs I/O through.
func (m *Manager) FS() FS { return m.fs }

// WALEnabled reports whether the manager write-ahead logs its heaps.
func (m *Manager) WALEnabled() bool { return m.wal != nil }

// HeapPath returns the path of the heap file that backs (or would back)
// the relation with the given storage name.
func (m *Manager) HeapPath(name string) string {
	return filepath.Join(m.dir, name+".heap")
}

// register marks h as covered by the write-ahead log, unless logging is
// off or the heap is temporary.
func (m *Manager) register(name string, h *HeapFile) {
	if m.wal == nil || strings.HasPrefix(name, "tmp-") {
		return
	}
	h.mgr = m
	h.logName = name
	m.mu.Lock()
	m.heaps[name] = h
	m.mu.Unlock()
}

func (m *Manager) unregister(name string) {
	m.mu.Lock()
	delete(m.heaps, name)
	m.mu.Unlock()
}

// CreateHeap creates an empty heap file named name.heap in the managed
// directory.
func (m *Manager) CreateHeap(name string, schema *frel.Schema) (*HeapFile, error) {
	p, err := OpenPagerFS(m.fs, m.HeapPath(name), m.stats)
	if err != nil {
		return nil, err
	}
	h := NewHeapFile(schema, p, m.pool)
	m.register(name, h)
	return h, nil
}

// OpenHeap reopens an existing heap file named name.heap in the managed
// directory, recovering its tuple count and append cursor.
func (m *Manager) OpenHeap(name string, schema *frel.Schema) (*HeapFile, error) {
	p, err := OpenPagerExistingFS(m.fs, m.HeapPath(name), m.stats)
	if err != nil {
		return nil, err
	}
	h, err := RecoverHeapFile(schema, p, m.pool)
	if err != nil {
		p.Close()
		return nil, err
	}
	m.register(name, h)
	return h, nil
}

// Tx is an open transaction: a group of appends that commits atomically.
// A Tx from Begin supports commit only (a transaction that never commits
// simply does not survive recovery); a Tx from BeginTxn additionally
// captures per-heap undo state so it can Rollback in place, without a
// restart. A Tx from a manager without a WAL is a no-op.
type Tx struct {
	m       *Manager
	id      uint64
	done    bool
	tracked bool // BeginTxn: undo captured, Rollback supported

	touched []*HeapFile            // heaps appended to, in first-touch order
	undo    map[*HeapFile]heapUndo // pre-transaction state, tracked only
}

// heapUndo is the geometry (and last-page image) of one heap before a
// tracked transaction first touched it. Appends only ever extend the file
// and rewrite the last page, so this is sufficient to roll back in place.
type heapUndo struct {
	numPages  int64
	numTuples int64
	lastPage  PageID
	lastUsed  int
	lastImage []byte // PageSize copy of the last page; nil when numPages == 0
}

// Begin opens a transaction. Only one transaction may be open at a time;
// appends outside any transaction autocommit individually.
func (m *Manager) Begin() (*Tx, error) {
	if m.wal == nil {
		return &Tx{}, nil
	}
	if m.tx != nil {
		return nil, fmt.Errorf("storage: transaction already open")
	}
	id, err := m.wal.Begin()
	if err != nil {
		return nil, err
	}
	tx := &Tx{m: m, id: id}
	m.tx = tx
	return tx, nil
}

// BeginTxn opens an explicit multi-statement transaction that supports
// Rollback: the first append to each heap captures its pre-transaction
// geometry and last-page image. Requires the write-ahead log.
func (m *Manager) BeginTxn() (*Tx, error) {
	if m.wal == nil {
		return nil, fmt.Errorf("storage: explicit transactions require the write-ahead log")
	}
	tx, err := m.Begin()
	if err != nil {
		return nil, err
	}
	tx.tracked = true
	tx.undo = make(map[*HeapFile]heapUndo)
	return tx, nil
}

// touch records that the transaction is about to append to h, capturing
// undo state on the first touch of a tracked transaction. Called before
// any mutation of h.
func (tx *Tx) touch(h *HeapFile) error {
	if tx.m == nil {
		return nil
	}
	if tx.tracked {
		if _, ok := tx.undo[h]; ok {
			return nil
		}
		u := heapUndo{
			numPages:  h.numPages.Load(),
			numTuples: h.numTuples.Load(),
			lastPage:  h.lastPage,
			lastUsed:  h.lastUsed,
		}
		if u.numPages > 0 {
			f, err := h.pool.Get(h.pager, h.lastPage)
			if err != nil {
				return err
			}
			f.Latch.RLock()
			u.lastImage = append([]byte(nil), f.Data...)
			f.Latch.RUnlock()
			h.pool.Unpin(f, false)
		}
		tx.undo[h] = u
		tx.touched = append(tx.touched, h)
		return nil
	}
	for _, t := range tx.touched {
		if t == h {
			return nil
		}
	}
	tx.touched = append(tx.touched, h)
	return nil
}

// Commit makes the transaction's appends durable: it logs the commit
// record, fsyncs the log (sharing the fsync with concurrent commits inside
// the group-commit window), releases the no-steal pins, and publishes the
// new committed counts so subsequent snapshots see the whole transaction.
func (tx *Tx) Commit() error {
	if tx.m == nil || tx.done {
		tx.done = true
		return nil
	}
	tx.done = true
	tx.m.tx = nil
	if err := tx.m.wal.Commit(tx.id); err != nil {
		return err
	}
	tx.m.pool.ClearNoSteal()
	tx.m.commitMu.Lock()
	for _, h := range tx.touched {
		h.committed.Store(h.numTuples.Load())
		h.committedVer.Store(h.version.Load())
	}
	tx.m.commitMu.Unlock()
	return nil
}

// Rollback undoes a tracked transaction in place: it logs a rollback
// marker, restores each touched heap's pre-transaction geometry and
// last-page image, discards the pool frames and file pages the
// transaction appended, and leaves the heaps bit-identical to their
// pre-transaction state. Concurrent snapshot readers are unaffected —
// their bounds never reach into the rolled-back region.
func (tx *Tx) Rollback() error {
	if tx.m == nil || tx.done {
		tx.done = true
		return nil
	}
	if !tx.tracked {
		return fmt.Errorf("storage: rollback of an untracked transaction")
	}
	tx.done = true
	tx.m.tx = nil
	first := tx.m.wal.Rollback(tx.id)
	for _, h := range tx.touched {
		if err := h.rollbackTo(tx.undo[h]); err != nil && first == nil {
			first = err
		}
	}
	tx.m.pool.ClearNoSteal()
	return first
}

// rollbackTo restores the heap to the pre-transaction state u.
func (h *HeapFile) rollbackTo(u heapUndo) error {
	if err := h.pool.DiscardPagesFrom(h.pager, PageID(u.numPages)); err != nil {
		return err
	}
	if u.numPages > 0 {
		f, err := h.pool.Get(h.pager, u.lastPage)
		if err != nil {
			return err
		}
		f.Latch.Lock()
		copy(f.Data, u.lastImage)
		f.Latch.Unlock()
		h.pool.Unpin(f, true)
	}
	if err := h.pager.Truncate(u.numPages); err != nil {
		return err
	}
	h.lastPage = u.lastPage
	if u.numPages == 0 {
		h.lastPage = -1
	}
	h.lastUsed = u.lastUsed
	h.numPages.Store(u.numPages)
	h.numTuples.Store(u.numTuples)
	h.statsMu.Lock()
	h.stats = nil // incrementally observed rolled-back tuples; rebuild lazily
	h.statsMu.Unlock()
	h.version.Add(1)
	return nil
}

// abandon closes the transaction without a commit record: recovery will
// discard its appends. Used on append failure, where the session is not
// expected to survive.
func (tx *Tx) abandon() {
	if tx.m == nil || tx.done {
		tx.done = true
		return
	}
	tx.done = true
	tx.m.tx = nil
}

// Checkpoint makes every relation durable in its heap file and truncates
// the write-ahead log: log, then pages, then page files, then the new
// single-checkpoint log swapped in by an atomic rename. No transaction may
// be open. Without a WAL it is a no-op.
func (m *Manager) Checkpoint() error {
	if m.wal == nil {
		return nil
	}
	if m.tx != nil {
		return fmt.Errorf("storage: checkpoint with open transaction")
	}
	if err := m.wal.Sync(); err != nil {
		return err
	}
	if err := m.pool.FlushAll(); err != nil {
		return err
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.heaps))
	for n := range m.heaps {
		names = append(names, n)
	}
	m.mu.Unlock()
	sort.Strings(names)
	states := make([]heapState, 0, len(names))
	for _, n := range names {
		m.mu.Lock()
		h := m.heaps[n]
		m.mu.Unlock()
		if err := h.Sync(); err != nil {
			return err
		}
		st, err := h.state()
		if err != nil {
			return err
		}
		states = append(states, st)
	}
	m.pool.ClearNoSteal()
	return m.wal.rewrite(states)
}

// state captures the heap's current durable geometry for a checkpoint
// record. The caller has flushed and synced the file.
func (h *HeapFile) state() (heapState, error) {
	st := heapState{
		name:      h.logName,
		numPages:  h.numPages.Load(),
		numTuples: h.numTuples.Load(),
	}
	if st.numPages > 0 {
		st.lastUsed = h.lastUsed
		f, err := h.pool.Get(h.pager, h.lastPage)
		if err != nil {
			return heapState{}, err
		}
		f.Latch.RLock()
		st.lastPage = append([]byte(nil), f.Data...)
		f.Latch.RUnlock()
		h.pool.Unpin(f, false)
	}
	return st, nil
}

// Close releases the manager's file handles: the write-ahead log and every
// registered heap. It does not checkpoint — the log replays on next open —
// and must not be used concurrently with other manager calls.
func (m *Manager) Close() error {
	var first error
	m.mu.Lock()
	heaps := make([]*HeapFile, 0, len(m.heaps))
	for _, h := range m.heaps {
		heaps = append(heaps, h)
	}
	temps := m.tempFree
	m.tempFree = nil
	m.mu.Unlock()
	// Pooled temps hold open file handles; remove them for real now. Their
	// pool frames were discarded when they entered the pool.
	for _, h := range temps {
		if err := h.pager.Remove(); err != nil && first == nil {
			first = err
		}
	}
	for _, h := range heaps {
		if err := h.pager.Close(); err != nil && first == nil {
			first = err
		}
	}
	if m.wal != nil {
		if err := m.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// tempFreeMax bounds the temp recycle pool; excess drops unlink normally.
const tempFreeMax = 32

// CreateTemp returns a temporary heap file (for sort runs and
// materialized intermediates), recycling a previously dropped one when
// available. Callers should Drop it when done.
func (m *Manager) CreateTemp(schema *frel.Schema) (*HeapFile, error) {
	m.mu.Lock()
	if n := len(m.tempFree); n > 0 {
		h := m.tempFree[n-1]
		m.tempFree = m.tempFree[:n-1]
		m.mu.Unlock()
		h.resetTemp(schema)
		return h, nil
	}
	m.seq++
	seq := m.seq
	m.mu.Unlock()
	h, err := m.CreateHeap(fmt.Sprintf("tmp-%06d", seq), schema)
	if err != nil {
		return nil, err
	}
	h.tempMgr = m
	return h, nil
}

// recycleTemp offers a dropped temp back to the pool; false means the
// pool is full and the caller should remove the file.
func (m *Manager) recycleTemp(h *HeapFile) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.tempFree) >= tempFreeMax {
		return false
	}
	m.tempFree = append(m.tempFree, h)
	return true
}
