package storage

import (
	"io"
	"os"
	"strings"
	"testing"
)

// readHeapBytes returns the raw bytes of the heap file "db/r.heap".
func readHeapBytes(t *testing.T, fs FS) []byte {
	t.Helper()
	f, err := fs.OpenFile("db/r.heap", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return data
}

func TestBeginTxnRequiresWAL(t *testing.T) {
	m, err := NewManagerOptions("db", ManagerOptions{PoolPages: 8, FS: NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.BeginTxn(); err == nil || !strings.Contains(err.Error(), "write-ahead log") {
		t.Errorf("BeginTxn without WAL: err = %v, want write-ahead-log error", err)
	}
}

// TestTxnRollbackBitIdentical rolls back a multi-page transaction and
// checks the heap is restored exactly: same tuples, same counters, same
// on-disk bytes after a flush, and the rolled-back pages gone from the
// file.
func TestTxnRollbackBitIdentical(t *testing.T) {
	fs := NewMemFS()
	m := newWALManager(t, fs, 32)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	const committed = 5
	for i := 0; i < committed; i++ {
		if err := h.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantBytes := readHeapBytes(t, fs)
	wantPages, wantTuples := h.NumPages(), h.NumTuples()

	tx, err := m.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	// Enough tuples to spill onto fresh pages, so the rollback exercises
	// both the last-page restore and the page discard/truncate path.
	for i := committed; i < committed+200; i++ {
		if err := h.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() == wantPages {
		t.Fatalf("transaction stayed on %d pages; grow the append count", wantPages)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	if h.NumPages() != wantPages || h.NumTuples() != wantTuples {
		t.Errorf("after rollback: %d pages / %d tuples, want %d / %d",
			h.NumPages(), h.NumTuples(), wantPages, wantTuples)
	}
	got, err := h.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(walPrefix(committed), 0) {
		t.Errorf("after rollback ReadAll has %d tuples, want the %d committed ones", got.Len(), committed)
	}
	// The heap must keep working after the rollback: appends land where
	// the transaction's never did.
	if err := h.Append(walTuple(committed)); err != nil {
		t.Fatal(err)
	}
	got, err = h.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(walPrefix(committed+1), 0) {
		t.Errorf("append after rollback: got %d tuples, want %d", got.Len(), committed+1)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Compare disk state against a database that never saw the
	// transaction at all.
	fs2 := NewMemFS()
	m2 := newWALManager(t, fs2, 32)
	h2, err := m2.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < committed+1; i++ {
		if err := h2.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	cleanBytes := readHeapBytes(t, fs2)
	gotBytes := readHeapBytes(t, fs)
	if string(gotBytes) != string(cleanBytes) {
		t.Errorf("heap file after rollback+append differs from a never-rolled-back run (%d vs %d bytes)", len(gotBytes), len(cleanBytes))
	}
	_ = wantBytes
}

// TestTxnRollbackEmptyHeap rolls back the first appends a heap ever saw
// (the undo captures zero pages).
func TestTxnRollbackEmptyHeap(t *testing.T) {
	fs := NewMemFS()
	m := newWALManager(t, fs, 8)
	defer m.Close()
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	tx, err := m.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := h.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if h.NumPages() != 0 || h.NumTuples() != 0 {
		t.Errorf("after rollback: %d pages / %d tuples, want 0 / 0", h.NumPages(), h.NumTuples())
	}
	if err := h.Append(walTuple(0)); err != nil {
		t.Fatal(err)
	}
	got, err := h.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(walPrefix(1), 0) {
		t.Errorf("append after empty-heap rollback: %d tuples, want 1", got.Len())
	}
}

// TestTxnSnapshotCut checks the snapshot machinery: an open transaction's
// appends are invisible to snapshots and to ReadCommitted until Commit,
// then visible all at once.
func TestTxnSnapshotCut(t *testing.T) {
	fs := NewMemFS()
	m := newWALManager(t, fs, 16)
	defer m.Close()
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := h.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	tx, err := m.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 9; i++ {
		if err := h.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	if snap == nil {
		t.Fatal("Snapshot() = nil on a WAL manager")
	}
	if sn := snap[h]; sn.Tuples != 4 {
		t.Errorf("mid-transaction snapshot sees %d tuples, want 4", sn.Tuples)
	}
	rc, err := h.ReadCommitted()
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Equal(walPrefix(4), 0) {
		t.Errorf("ReadCommitted mid-transaction has %d tuples, want 4", rc.Len())
	}
	// A bounded scan at the snapshot's cut returns exactly the prefix even
	// though the heap has grown past it.
	var n int
	sc := h.ScanAt(snap[h].Tuples)
	for {
		if _, ok := sc.Next(); !ok {
			break
		}
		n++
	}
	sc.Close()
	if n != 4 {
		t.Errorf("bounded scan returned %d tuples, want 4", n)
	}

	verBefore := h.CommittedVersion()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap = m.Snapshot()
	if sn := snap[h]; sn.Tuples != 9 {
		t.Errorf("post-commit snapshot sees %d tuples, want 9", sn.Tuples)
	}
	if h.CommittedVersion() == verBefore {
		t.Errorf("commit did not advance the committed version")
	}
	rc, err = h.ReadCommitted()
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Equal(walPrefix(9), 0) {
		t.Errorf("ReadCommitted post-commit has %d tuples, want 9", rc.Len())
	}
}

// TestTxnRollbackSurvivesRestart rolls a transaction back, crashes
// without a checkpoint, and checks recovery agrees with the in-memory
// outcome: the rolled-back tuples stay gone, work committed before and
// after survives.
func TestTxnRollbackSurvivesRestart(t *testing.T) {
	fs := NewMemFS()
	m := newWALManager(t, fs, 16)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := h.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	tx, err := m.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 140; i++ {
		if err := h.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := h.Append(walTuple(3)); err != nil { // committed after the rollback
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // no checkpoint: recovery replays the log
		t.Fatal(err)
	}

	m2 := newWALManager(t, fs, 16)
	defer m2.Close()
	h2, err := m2.OpenHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(walPrefix(4), 0) {
		t.Errorf("recovered %d tuples, want the 4 committed ones", got.Len())
	}
}

// TestTxnCommitTwoHeaps commits one transaction spanning two relations
// and checks the snapshot cut moves atomically for both.
func TestTxnCommitTwoHeaps(t *testing.T) {
	fs := NewMemFS()
	m := newWALManager(t, fs, 16)
	defer m.Close()
	a, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.CreateHeap("s", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	tx, err := m.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(walTuple(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(walTuple(1)); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap[a].Tuples != 0 || snap[b].Tuples != 0 {
		t.Errorf("mid-transaction snapshot sees (%d, %d), want (0, 0)", snap[a].Tuples, snap[b].Tuples)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap = m.Snapshot()
	if snap[a].Tuples != 1 || snap[b].Tuples != 1 {
		t.Errorf("post-commit snapshot sees (%d, %d), want (1, 1)", snap[a].Tuples, snap[b].Tuples)
	}
}
