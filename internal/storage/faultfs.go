package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrInjectedFault is the error every FaultFS operation returns once the
// configured fault has fired: the simulated process is dead and no further
// I/O reaches the disk.
var ErrInjectedFault = errors.New("storage: injected I/O fault (simulated crash)")

// FaultMode selects what happens to the write the fault fires on.
type FaultMode int

// The fault matrix. Every mode leaves the file system "crashed": all
// subsequent operations fail with ErrInjectedFault.
const (
	// FaultStop kills I/O just before the target operation: nothing of it
	// reaches the disk (a clean power cut at an operation boundary).
	FaultStop FaultMode = iota
	// FaultTorn performs only a prefix of the target write (a torn page or
	// torn log record: power was lost mid-write).
	FaultTorn
	// FaultFlip corrupts one bit of the target write's payload before
	// performing it in full (media corruption on the last write).
	FaultFlip
	// FaultDrop silently drops the target write — it reports success but
	// never reaches the disk — and crashes at the next Sync, modelling a
	// buffered write lost before the process could flush it.
	FaultDrop
)

// String names the mode.
func (m FaultMode) String() string {
	switch m {
	case FaultStop:
		return "stop"
	case FaultTorn:
		return "torn"
	case FaultFlip:
		return "flip"
	case FaultDrop:
		return "drop"
	default:
		return fmt.Sprintf("FaultMode(%d)", int(m))
	}
}

// FaultModes lists the whole fault matrix, for tests that sweep it.
var FaultModes = []FaultMode{FaultStop, FaultTorn, FaultFlip, FaultDrop}

// FaultFS wraps an FS and injects one deterministic fault at the Nth
// mutating operation (writes, syncs, truncates, renames, removes), then
// fails everything after it. With Target 0 it is transparent and only
// counts, which is how tests enumerate the injection points of a workload:
// run once clean, read Ops(), then rerun once per n in [1, Ops()].
type FaultFS struct {
	base   FS
	mode   FaultMode
	target int64 // fault fires on the target-th mutating op; 0 = disabled
	seed   int64 // determinizes the torn prefix length / flipped bit

	mu      sync.Mutex
	ops     int64
	crashed bool
	dropped bool // a FaultDrop fired; crash at the next Sync
}

// NewFaultFS builds a fault-injecting FS over base. The fault fires on the
// target-th mutating operation (1-based); target 0 disables injection.
func NewFaultFS(base FS, mode FaultMode, target, seed int64) *FaultFS {
	return &FaultFS{base: base, mode: mode, target: target, seed: seed}
}

// Ops returns the number of mutating operations observed so far.
func (ffs *FaultFS) Ops() int64 {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	return ffs.ops
}

// Crashed reports whether the fault has fired.
func (ffs *FaultFS) Crashed() bool {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	return ffs.crashed
}

// step counts one mutating operation and reports whether the fault fires
// on it. It must be called with mu held.
func (ffs *FaultFS) step() (fire bool) {
	ffs.ops++
	return ffs.target > 0 && ffs.ops == ffs.target
}

// faultWrite decides the fate of a write of p. It returns the bytes to
// actually write (nil for none) and the error to report.
func (ffs *FaultFS) faultWrite(p []byte) (write []byte, err error) {
	switch ffs.mode {
	case FaultTorn:
		n := 0
		if len(p) > 0 {
			// Deterministic torn point, never the full write.
			n = int((ffs.seed*2654435761 + ffs.ops*40503) % int64(len(p)))
			if n < 0 {
				n = -n
			}
		}
		ffs.crashed = true
		return p[:n], ErrInjectedFault
	case FaultFlip:
		q := append([]byte(nil), p...)
		if len(q) > 0 {
			bit := (ffs.seed*31 + ffs.ops*7) % int64(len(q)*8)
			if bit < 0 {
				bit = -bit
			}
			q[bit/8] ^= 1 << (bit % 8)
		}
		ffs.crashed = true
		return q, ErrInjectedFault
	case FaultDrop:
		ffs.dropped = true
		return nil, nil // reported as success
	default: // FaultStop
		ffs.crashed = true
		return nil, ErrInjectedFault
	}
}

// faultFile wraps every file handed out so writes and syncs are observed.
type faultFile struct {
	ffs *FaultFS
	f   File
}

// OpenFile opens path; once crashed it fails like everything else.
func (ffs *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	ffs.mu.Lock()
	crashed := ffs.crashed
	ffs.mu.Unlock()
	if crashed {
		return nil, ErrInjectedFault
	}
	f, err := ffs.base.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{ffs: ffs, f: f}, nil
}

// mutate runs a non-write mutating operation (sync, truncate, rename,
// remove) under the fault discipline: these have no partial outcome, so a
// firing fault behaves like FaultStop regardless of mode.
func (ffs *FaultFS) mutate(op func() error) error {
	ffs.mu.Lock()
	if ffs.crashed {
		ffs.mu.Unlock()
		return ErrInjectedFault
	}
	if ffs.step() {
		ffs.crashed = true
		ffs.mu.Unlock()
		return ErrInjectedFault
	}
	ffs.mu.Unlock()
	return op()
}

// ReadDir lists dir; reads never advance the fault counter.
func (ffs *FaultFS) ReadDir(dir string) ([]string, error) {
	ffs.mu.Lock()
	crashed := ffs.crashed
	ffs.mu.Unlock()
	if crashed {
		return nil, ErrInjectedFault
	}
	return ffs.base.ReadDir(dir)
}

// Remove deletes path unless the fault fires first.
func (ffs *FaultFS) Remove(path string) error {
	return ffs.mutate(func() error { return ffs.base.Remove(path) })
}

// Rename renames oldpath unless the fault fires first.
func (ffs *FaultFS) Rename(oldpath, newpath string) error {
	return ffs.mutate(func() error { return ffs.base.Rename(oldpath, newpath) })
}

// SyncDir syncs dir unless the fault fires first.
func (ffs *FaultFS) SyncDir(dir string) error {
	return ffs.mutate(func() error { return ffs.base.SyncDir(dir) })
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	ff.ffs.mu.Lock()
	crashed := ff.ffs.crashed
	ff.ffs.mu.Unlock()
	if crashed {
		return 0, ErrInjectedFault
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	ffs := ff.ffs
	ffs.mu.Lock()
	if ffs.crashed {
		ffs.mu.Unlock()
		return 0, ErrInjectedFault
	}
	if ffs.step() {
		write, err := ffs.faultWrite(p)
		ffs.mu.Unlock()
		if len(write) > 0 {
			ff.f.WriteAt(write, off) //nolint:errcheck // the injected fault dominates
		}
		if err != nil {
			return 0, err
		}
		return len(p), nil // FaultDrop: claim success
	}
	ffs.mu.Unlock()
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) Size() (int64, error) {
	ff.ffs.mu.Lock()
	crashed := ff.ffs.crashed
	ff.ffs.mu.Unlock()
	if crashed {
		return 0, ErrInjectedFault
	}
	return ff.f.Size()
}

func (ff *faultFile) Truncate(size int64) error {
	return ff.ffs.mutate(func() error { return ff.f.Truncate(size) })
}

func (ff *faultFile) Sync() error {
	ffs := ff.ffs
	ffs.mu.Lock()
	if ffs.crashed {
		ffs.mu.Unlock()
		return ErrInjectedFault
	}
	if ffs.dropped {
		// A dropped write can only stay hidden until the next flush: the
		// simulated process dies here, before the sync completes.
		ffs.crashed = true
		ffs.mu.Unlock()
		return ErrInjectedFault
	}
	if ffs.step() {
		ffs.crashed = true
		ffs.mu.Unlock()
		return ErrInjectedFault
	}
	ffs.mu.Unlock()
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
