package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/frel"
)

func TestOpenPagerExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.pg")
	stats := &Stats{}
	p, err := OpenPager(path, stats)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 3; i++ {
		id := p.Allocate()
		buf[0] = byte(i + 1)
		if err := p.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenPagerExisting(path, stats)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p2.Close() })
	if p2.NumPages() != 3 {
		t.Errorf("NumPages = %d, want 3", p2.NumPages())
	}
	in := make([]byte, PageSize)
	if err := p2.ReadPage(1, in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 2 {
		t.Errorf("page 1 byte = %d", in[0])
	}
}

func TestOpenPagerExistingErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenPagerExisting(filepath.Join(dir, "absent.pg"), &Stats{}); err == nil {
		t.Errorf("missing file: want error")
	}
	// Misaligned file.
	bad := filepath.Join(dir, "bad.pg")
	if err := os.WriteFile(bad, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPagerExisting(bad, &Stats{}); err == nil {
		t.Errorf("misaligned file: want error")
	}
	if _, err := OpenPagerExisting(filepath.Join(dir, "x.pg"), nil); err == nil {
		t.Errorf("nil stats: want error")
	}
}

func TestRecoverHeapFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, 8)
	schema := testSchema()
	h, err := m.CreateHeap("r", schema)
	if err != nil {
		t.Fatal(err)
	}
	want := frel.NewRelation(schema)
	for i := 0; i < 1200; i++ {
		tup := frel.NewTuple(0.25+float64(i%4)/8, frel.Crisp(float64(i)), frel.Str("n"))
		want.Append(tup)
		if err := h.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if h.Bytes() != h.NumPages()*PageSize {
		t.Errorf("Bytes = %d", h.Bytes())
	}

	m2 := NewManager(dir, 8)
	h2, err := m2.OpenHeap("r", schema)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumTuples() != 1200 || h2.NumPages() != h.NumPages() {
		t.Errorf("recovered %d tuples / %d pages, want %d / %d",
			h2.NumTuples(), h2.NumPages(), h.NumTuples(), h.NumPages())
	}
	got, err := h2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Errorf("recovered data differs")
	}

	// Appending continues in the last page when there is room.
	pagesBefore := h2.NumPages()
	if err := h2.Append(frel.NewTuple(1, frel.Crisp(1200), frel.Str("n"))); err != nil {
		t.Fatal(err)
	}
	if h2.NumPages() != pagesBefore {
		t.Errorf("append after recovery allocated a new page unnecessarily")
	}
	if err := h2.Flush(); err != nil {
		t.Fatal(err)
	}

	m3 := NewManager(dir, 8)
	h3, err := m3.OpenHeap("r", schema)
	if err != nil {
		t.Fatal(err)
	}
	if h3.NumTuples() != 1201 {
		t.Errorf("NumTuples after second recovery = %d", h3.NumTuples())
	}
}

func TestRecoverHeapFileEmpty(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, 8)
	if _, err := m.CreateHeap("r", testSchema()); err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(dir, 8)
	h, err := m2.OpenHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if h.NumTuples() != 0 || h.NumPages() != 0 {
		t.Errorf("empty heap recovered as %d/%d", h.NumTuples(), h.NumPages())
	}
}

func TestRecoverHeapFileCorrupt(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, 8)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Append(frel.NewTuple(1, frel.Crisp(1), frel.Str("x"))); err != nil {
		t.Fatal(err)
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the record length of the first record so it overruns.
	path := h.Pager().Path()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[2] = 0xFF
	data[3] = 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(dir, 8)
	if _, err := m2.OpenHeap("r", testSchema()); err == nil {
		t.Errorf("corrupt heap: want error")
	}
}

func TestAppendAll(t *testing.T) {
	m := NewManager(t.TempDir(), 8)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	rel := frel.NewRelation(testSchema())
	for i := 0; i < 25; i++ {
		rel.Append(frel.NewTuple(1, frel.Crisp(float64(i)), frel.Str("y")))
	}
	if err := h.AppendAll(rel); err != nil {
		t.Fatal(err)
	}
	if h.NumTuples() != 25 {
		t.Errorf("NumTuples = %d", h.NumTuples())
	}
}

func TestManagerDirAndPoolStats(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, 8)
	if m.Dir() != dir {
		t.Errorf("Dir = %q", m.Dir())
	}
	if m.Pool().Stats() != m.Stats() {
		t.Errorf("pool and manager should share stats")
	}
}
