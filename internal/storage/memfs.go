package storage

import (
	"fmt"
	"io"
	"os"
	"path"
	"sync"
)

// MemFS is an in-memory FS for tests: it makes the crash-recovery property
// test hermetic (no real fsyncs, no leaked temp files) and fast enough to
// sweep thousands of injection points. It is not a faithful page cache —
// every write is immediately "durable" — which is exactly what the fault
// harness wants: FaultFS layered on top decides which writes are lost.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

func memPath(p string) string { return path.Clean(p) }

// OpenFile opens p, honoring os.O_CREATE and os.O_TRUNC. Opening a missing
// file without O_CREATE fails with an error satisfying os.IsNotExist.
func (m *MemFS) OpenFile(p string, flag int, perm os.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = memPath(p)
	_, ok := m.files[p]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: p, Err: os.ErrNotExist}
		}
		m.files[p] = nil
	} else if flag&os.O_TRUNC != 0 {
		m.files[p] = nil
	}
	return &memFile{fs: m, path: p}, nil
}

// ReadDir lists the entry names directly under dir.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = memPath(dir)
	var names []string
	for p := range m.files {
		if path.Dir(p) == dir {
			names = append(names, path.Base(p))
		}
	}
	return names, nil
}

// Remove deletes p.
func (m *MemFS) Remove(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = memPath(p)
	if _, ok := m.files[p]; !ok {
		return &os.PathError{Op: "remove", Path: p, Err: os.ErrNotExist}
	}
	delete(m.files, p)
	return nil
}

// Rename atomically replaces newpath with oldpath.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = memPath(oldpath), memPath(newpath)
	data, ok := m.files[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	m.files[newpath] = data
	delete(m.files, oldpath)
	return nil
}

// SyncDir is a no-op: MemFS directory entries are always durable.
func (m *MemFS) SyncDir(dir string) error { return nil }

// memFile addresses one MemFS entry. Handles stay usable after Rename of
// their path (they resolve the path on each operation, matching the
// by-inode behavior the engine relies on closely enough for tests, which
// reopen after renames anyway).
type memFile struct {
	fs   *MemFS
	path string
}

func (f *memFile) data() ([]byte, error) {
	d, ok := f.fs.files[f.path]
	if !ok {
		return nil, &os.PathError{Op: "io", Path: f.path, Err: os.ErrNotExist}
	}
	return d, nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	d, err := f.data()
	if err != nil {
		return 0, err
	}
	if off >= int64(len(d)) {
		return 0, io.EOF
	}
	n := copy(p, d[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	d, err := f.data()
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("memfs: negative offset %d", off)
	}
	end := off + int64(len(p))
	if end > int64(len(d)) {
		grown := make([]byte, end)
		copy(grown, d)
		d = grown
	}
	copy(d[off:end], p)
	f.fs.files[f.path] = d
	return len(p), nil
}

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	d, err := f.data()
	if err != nil {
		return 0, err
	}
	return int64(len(d)), nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	d, err := f.data()
	if err != nil {
		return err
	}
	if size <= int64(len(d)) {
		f.fs.files[f.path] = d[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, d)
	f.fs.files[f.path] = grown
	return nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }
