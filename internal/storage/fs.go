package storage

import (
	"io"
	"os"
)

// File is the subset of *os.File the storage engine performs I/O through.
// Pagers and the write-ahead log address files by absolute offsets only, so
// positional reads and writes plus truncation and durability are enough.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current length of the file in bytes.
	Size() (int64, error)
	// Truncate changes the length of the file.
	Truncate(size int64) error
	// Sync flushes the file's contents to stable storage.
	Sync() error
	Close() error
}

// FS abstracts the file operations of the storage engine so tests can
// interpose fault injection (see FaultFS). The zero-cost default is OsFS.
type FS interface {
	// OpenFile opens path with os.OpenFile semantics.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// ReadDir returns the names (not paths) of the entries of dir.
	ReadDir(dir string) ([]string, error)
	// Remove deletes path.
	Remove(path string) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// SyncDir flushes the directory entry metadata of dir (needed after
	// Rename for the new name to survive a crash).
	SyncDir(dir string) error
}

// OsFS is the real file system.
type OsFS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// OpenFile opens path on the real file system.
func (OsFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// ReadDir lists the entry names of dir.
func (OsFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

// Remove deletes path.
func (OsFS) Remove(path string) error { return os.Remove(path) }

// Rename atomically replaces newpath with oldpath.
func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// SyncDir fsyncs the directory dir.
func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
