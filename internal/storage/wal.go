package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Write-ahead log.
//
// The log is a flat file of checksummed records:
//
//	[0:4]  uint32 CRC-32 (IEEE) of the body
//	[4:8]  uint32 body length
//	then the body: one type byte followed by the typed payload
//
// Integers inside payloads are uvarints. Append records carry the raw
// serialized tuple bytes (the frel wire format), so redo is a byte-level
// replay that needs no schema and reproduces membership degrees exactly.
//
// The log always begins with a checkpoint record holding, per relation,
// the durable heap geometry (page count, tuple count, append cursor) and a
// full image of the last page — the only heap page that is ever rewritten
// in place, so the image is what protects it from torn writes. Truncating
// the log means writing a new single-checkpoint log to a temporary file
// and renaming it over the old one.
//
// Recovery (see recoverWAL) parses the log until the first corrupt or
// truncated record, then for every relation that has at least one append
// record after the last checkpoint — committed or not — rewinds the heap
// file to the checkpoint geometry, restores the last-page image, and
// replays the appends of committed transactions in log order. Relations
// without append records are left exactly as found on disk, which is what
// makes rename-based rewrites (DELETE) atomic under the same log.
// Transactions that logged a rollback record (or no commit record at all —
// a crash mid-transaction) are discarded the same way: redo replays only
// committed appends, so committed-prefix semantics hold for explicit
// multi-statement transactions exactly as for autocommitted ones.
const (
	walFileName = "wal"
	walTmpName  = "wal.tmp"

	walHeaderSize = 8
)

type walRecType byte

const (
	recBegin      walRecType = 1
	recAppend     walRecType = 2
	recCommit     walRecType = 3
	recCheckpoint walRecType = 4
	recRollback   walRecType = 5
)

// heapState is the durable geometry of one heap file at checkpoint time.
type heapState struct {
	name      string // log name = heap file base name (without ".heap")
	numPages  int64
	numTuples int64
	lastUsed  int    // bytes used in the last page, including its header
	lastPage  []byte // PageSize image of the last page; nil when numPages == 0
}

// WAL is an append-only checksummed log over one database directory. It is
// safe for concurrent use; commits of concurrent transactions share fsyncs
// through a leader/follower group-commit protocol.
type WAL struct {
	fs     FS
	dir    string
	path   string
	window time.Duration // group-commit window (0 = sync immediately)

	mu      sync.Mutex
	cond    *sync.Cond
	f       File
	off     int64 // append offset
	synced  int64 // offset known durable
	syncing bool  // a group-commit leader is inside fsync
	nextTx  uint64
	buf     []byte // record assembly scratch
	pbuf    []byte // payload assembly scratch
}

// openWAL recovers dir from any existing log, then starts a fresh log
// whose checkpoint base is the post-recovery on-disk state of every
// (non-temporary) heap file in dir.
func openWAL(fs FS, dir string, window time.Duration) (*WAL, error) {
	if err := recoverWAL(fs, dir); err != nil {
		return nil, err
	}
	// Temp heaps of a previous process are garbage after a crash (they are
	// never logged and their owners are gone); clear them before they can
	// be mistaken for data.
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: wal: list %s: %w", dir, err)
	}
	var states []heapState
	for _, n := range names {
		if !strings.HasSuffix(n, ".heap") {
			continue
		}
		if strings.HasPrefix(n, "tmp-") {
			if err := fs.Remove(filepath.Join(dir, n)); err != nil {
				return nil, fmt.Errorf("storage: wal: clear stale temp %s: %w", n, err)
			}
			continue
		}
		st, err := readHeapState(fs, dir, strings.TrimSuffix(n, ".heap"))
		if err != nil {
			return nil, err
		}
		states = append(states, st)
	}
	sort.Slice(states, func(i, j int) bool { return states[i].name < states[j].name })
	w := &WAL{fs: fs, dir: dir, path: filepath.Join(dir, walFileName), window: window}
	w.cond = sync.NewCond(&w.mu)
	if err := w.rewrite(states); err != nil {
		return nil, err
	}
	return w, nil
}

// writeLocked appends one record. Callers hold w.mu.
func (w *WAL) writeLocked(typ walRecType, payload []byte) error {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	w.buf = append(w.buf, byte(typ))
	w.buf = append(w.buf, payload...)
	body := w.buf[walHeaderSize:]
	binary.LittleEndian.PutUint32(w.buf[0:4], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint32(w.buf[4:8], uint32(len(body)))
	if _, err := w.f.WriteAt(w.buf, w.off); err != nil {
		return fmt.Errorf("storage: wal append: %w", err)
	}
	w.off += int64(len(w.buf))
	return nil
}

// Begin allocates a transaction ID and logs its begin record.
func (w *WAL) Begin() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextTx++
	id := w.nextTx
	w.pbuf = binary.AppendUvarint(w.pbuf[:0], id)
	return id, w.writeLocked(recBegin, w.pbuf)
}

// Append logs one tuple append: the relation's log name, the tuple's
// position seq in the relation, and its raw serialized bytes.
func (w *WAL) Append(txid uint64, name string, seq int64, rec []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	p := w.pbuf[:0]
	p = binary.AppendUvarint(p, txid)
	p = binary.AppendUvarint(p, uint64(len(name)))
	p = append(p, name...)
	p = binary.AppendUvarint(p, uint64(seq))
	p = binary.AppendUvarint(p, uint64(len(rec)))
	p = append(p, rec...)
	w.pbuf = p
	return w.writeLocked(recAppend, p)
}

// Rollback logs the transaction's rollback record. The record is a marker
// only — recovery already discards any transaction without a commit record
// — so it is not synced; losing it in a crash changes nothing.
func (w *WAL) Rollback(txid uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pbuf = binary.AppendUvarint(w.pbuf[:0], txid)
	return w.writeLocked(recRollback, w.pbuf)
}

// Commit logs the transaction's commit record and makes it durable.
func (w *WAL) Commit(txid uint64) error {
	w.mu.Lock()
	w.pbuf = binary.AppendUvarint(w.pbuf[:0], txid)
	err := w.writeLocked(recCommit, w.pbuf)
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.Sync()
}

// Sync makes every record appended so far durable. Concurrent callers
// group-commit: one leader waits out the commit window and issues a single
// fsync covering everything appended by then; the others wait for it.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	target := w.off
	for w.synced < target {
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		f := w.f
		w.mu.Unlock()
		if w.window > 0 {
			time.Sleep(w.window)
		}
		w.mu.Lock()
		high := w.off
		w.mu.Unlock()
		err := f.Sync()
		w.mu.Lock()
		w.syncing = false
		w.cond.Broadcast()
		if err != nil {
			return fmt.Errorf("storage: wal sync: %w", err)
		}
		if high > w.synced {
			w.synced = high
		}
	}
	return nil
}

// rewrite truncates the log to a single checkpoint record carrying states.
// The new log is built in a temporary file, synced, and renamed over the
// old one, so a crash at any point leaves one intact log in place.
func (w *WAL) rewrite(states []heapState) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncing {
		w.cond.Wait()
	}
	p := w.pbuf[:0]
	p = binary.AppendUvarint(p, uint64(len(states)))
	for _, st := range states {
		p = binary.AppendUvarint(p, uint64(len(st.name)))
		p = append(p, st.name...)
		p = binary.AppendUvarint(p, uint64(st.numPages))
		p = binary.AppendUvarint(p, uint64(st.numTuples))
		p = binary.AppendUvarint(p, uint64(st.lastUsed))
		if st.numPages > 0 {
			p = append(p, st.lastPage...)
		}
	}
	w.pbuf = p
	body := make([]byte, 0, walHeaderSize+1+len(p))
	body = append(body, 0, 0, 0, 0, 0, 0, 0, 0)
	body = append(body, byte(recCheckpoint))
	body = append(body, p...)
	binary.LittleEndian.PutUint32(body[0:4], crc32.ChecksumIEEE(body[walHeaderSize:]))
	binary.LittleEndian.PutUint32(body[4:8], uint32(len(body)-walHeaderSize))

	tmp := filepath.Join(w.dir, walTmpName)
	f, err := w.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: wal checkpoint: %w", err)
	}
	if _, err := f.WriteAt(body, 0); err != nil {
		f.Close()
		return fmt.Errorf("storage: wal checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: wal checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: wal checkpoint: %w", err)
	}
	if err := w.fs.Rename(tmp, w.path); err != nil {
		return fmt.Errorf("storage: wal checkpoint: %w", err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		return fmt.Errorf("storage: wal checkpoint: %w", err)
	}
	nf, err := w.fs.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: wal reopen: %w", err)
	}
	if w.f != nil {
		w.f.Close()
	}
	w.f = nf
	w.off = int64(len(body))
	w.synced = w.off
	return nil
}

// Close releases the log file handle without truncating the log (the next
// open replays it).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// walRecord is one parsed log record.
type walRecord struct {
	typ    walRecType
	txid   uint64
	name   string
	seq    int64
	data   []byte
	states []heapState
}

// byteReader decodes uvarint-framed payloads, latching any decode failure.
type byteReader struct {
	b   []byte
	off int
	bad bool
}

func (r *byteReader) uvarint() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) take(n uint64) []byte {
	if r.bad || n > uint64(len(r.b)-r.off) {
		r.bad = true
		return nil
	}
	p := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

// parseWAL decodes records from the raw log bytes, stopping silently at
// the first corrupt or truncated record: everything past a torn tail is by
// definition not durable.
func parseWAL(data []byte) []walRecord {
	var recs []walRecord
	off := 0
	for off+walHeaderSize <= len(data) {
		crc := binary.LittleEndian.Uint32(data[off:])
		n := int(binary.LittleEndian.Uint32(data[off+4:]))
		if n < 1 || n > len(data)-off-walHeaderSize {
			break
		}
		body := data[off+walHeaderSize : off+walHeaderSize+n]
		if crc32.ChecksumIEEE(body) != crc {
			break
		}
		rec, ok := decodeBody(body)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off += walHeaderSize + n
	}
	return recs
}

func decodeBody(body []byte) (walRecord, bool) {
	rec := walRecord{typ: walRecType(body[0])}
	r := &byteReader{b: body, off: 1}
	switch rec.typ {
	case recBegin, recCommit, recRollback:
		rec.txid = r.uvarint()
	case recAppend:
		rec.txid = r.uvarint()
		rec.name = string(r.take(r.uvarint()))
		rec.seq = int64(r.uvarint())
		rec.data = r.take(r.uvarint())
	case recCheckpoint:
		n := r.uvarint()
		for i := uint64(0); i < n && !r.bad; i++ {
			var st heapState
			st.name = string(r.take(r.uvarint()))
			st.numPages = int64(r.uvarint())
			st.numTuples = int64(r.uvarint())
			st.lastUsed = int(r.uvarint())
			if st.numPages > 0 {
				st.lastPage = r.take(PageSize)
			}
			rec.states = append(rec.states, st)
		}
	default:
		return rec, false
	}
	return rec, !r.bad
}

// recoverWAL replays the directory's log, if any: relations touched by
// append records after the last checkpoint are rewound to their checkpoint
// geometry and the appends of committed transactions are replayed onto
// them. Uncommitted work disappears; untouched relations are not opened.
func recoverWAL(fs FS, dir string) error {
	path := filepath.Join(dir, walFileName)
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if os.IsNotExist(err) {
		return nil // pre-WAL database or first open
	}
	if err != nil {
		return fmt.Errorf("storage: wal recover: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return fmt.Errorf("storage: wal recover: %w", err)
	}
	data := make([]byte, size)
	if size > 0 {
		if n, err := f.ReadAt(data, 0); int64(n) < size {
			f.Close()
			return fmt.Errorf("storage: wal recover: short read: %w", err)
		}
	}
	f.Close()

	recs := parseWAL(data)
	base := make(map[string]heapState)
	start := 0
	for i, r := range recs {
		if r.typ == recCheckpoint {
			start = i + 1
			clear(base)
			for _, st := range r.states {
				base[st.name] = st
			}
		}
	}
	committed := make(map[uint64]bool)
	for _, r := range recs[start:] {
		if r.typ == recCommit {
			committed[r.txid] = true
		}
	}
	touched := make(map[string]bool)
	redo := make(map[string][][]byte)
	for _, r := range recs[start:] {
		if r.typ != recAppend {
			continue
		}
		touched[r.name] = true
		if committed[r.txid] {
			redo[r.name] = append(redo[r.name], r.data)
		}
	}
	names := make([]string, 0, len(touched))
	for n := range touched {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := redoRelation(fs, dir, name, base[name], redo[name]); err != nil {
			return err
		}
	}
	return nil
}

// redoRelation rewinds one heap file to its checkpoint geometry st (the
// zero state for a relation created after the checkpoint), then replays
// recs — raw serialized tuples in commit order — with the same page-packing
// rule HeapFile.Append uses, and truncates the file to the replayed length.
// Everything the crash may have left beyond or torn inside the replayed
// region is overwritten or cut off.
func redoRelation(fs FS, dir, name string, st heapState, recs [][]byte) error {
	path := filepath.Join(dir, name+".heap")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("storage: redo %s: %w", name, err)
	}
	defer f.Close()
	page := make([]byte, PageSize)
	numPages := st.numPages
	lastUsed := st.lastUsed
	if numPages > 0 {
		copy(page, st.lastPage)
	}
	count := binary.LittleEndian.Uint16(page[0:2])
	flushLast := func() error {
		binary.LittleEndian.PutUint16(page[0:2], count)
		if _, err := f.WriteAt(page, (numPages-1)*PageSize); err != nil {
			return fmt.Errorf("storage: redo %s: %w", name, err)
		}
		return nil
	}
	dirtyLast := numPages > 0 // the restored image must reach the disk
	for _, rec := range recs {
		need := recHeader + len(rec)
		if numPages == 0 || lastUsed+need > PageSize {
			if numPages > 0 {
				if err := flushLast(); err != nil {
					return err
				}
			}
			numPages++
			for i := range page {
				page[i] = 0
			}
			lastUsed = pageHeader
			count = 0
		}
		binary.LittleEndian.PutUint16(page[lastUsed:], uint16(len(rec)))
		copy(page[lastUsed+recHeader:], rec)
		lastUsed += need
		count++
		dirtyLast = true
	}
	if dirtyLast {
		if err := flushLast(); err != nil {
			return err
		}
	}
	if err := f.Truncate(numPages * PageSize); err != nil {
		return fmt.Errorf("storage: redo %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: redo %s: %w", name, err)
	}
	return nil
}

// readHeapState derives a heap file's checkpoint geometry by walking its
// page headers, without needing the relation's schema.
func readHeapState(fs FS, dir, name string) (heapState, error) {
	path := filepath.Join(dir, name+".heap")
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return heapState{}, fmt.Errorf("storage: read heap state %s: %w", name, err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return heapState{}, fmt.Errorf("storage: read heap state %s: %w", name, err)
	}
	if size%PageSize != 0 {
		return heapState{}, fmt.Errorf("storage: heap %s is %d bytes, not page aligned", name, size)
	}
	st := heapState{name: name, numPages: size / PageSize}
	page := make([]byte, PageSize)
	for pid := int64(0); pid < st.numPages; pid++ {
		if _, err := f.ReadAt(page, pid*PageSize); err != nil {
			return heapState{}, fmt.Errorf("storage: read heap state %s: %w", name, err)
		}
		count := int(binary.LittleEndian.Uint16(page[0:2]))
		st.numTuples += int64(count)
		if pid == st.numPages-1 {
			off := pageHeader
			for i := 0; i < count; i++ {
				if off+recHeader > PageSize {
					return heapState{}, fmt.Errorf("storage: corrupt heap page in %s", name)
				}
				off += recHeader + int(binary.LittleEndian.Uint16(page[off:]))
				if off > PageSize {
					return heapState{}, fmt.Errorf("storage: corrupt heap page in %s", name)
				}
			}
			st.lastUsed = off
			st.lastPage = append([]byte(nil), page...)
		}
	}
	return st, nil
}
