package storage

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/frel"
)

func testSchema() *frel.Schema {
	return frel.NewSchema("R",
		frel.Attribute{Name: "X", Kind: frel.KindNumber},
		frel.Attribute{Name: "NAME", Kind: frel.KindString},
	)
}

func newManager(t *testing.T, pages int) *Manager {
	t.Helper()
	return NewManager(t.TempDir(), pages)
}

// newTestPager opens a pager over a file in a per-test temporary
// directory, registering cleanup with t.Cleanup so the file cannot leak
// even when a test (or a simulated crash in the fault-injection tests)
// bails out before its deferred teardown.
func newTestPager(t *testing.T, stats *Stats) *Pager {
	t.Helper()
	if stats == nil {
		stats = &Stats{}
	}
	p, err := OpenPager(filepath.Join(t.TempDir(), "x.pg"), stats)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Remove() })
	return p
}

func TestPagerReadWrite(t *testing.T) {
	stats := &Stats{}
	p := newTestPager(t, stats)
	id := p.Allocate()
	out := make([]byte, PageSize)
	copy(out, "hello page")
	if err := p.WritePage(id, out); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, PageSize)
	if err := p.ReadPage(id, in); err != nil {
		t.Fatal(err)
	}
	if string(in[:10]) != "hello page" {
		t.Errorf("read back %q", in[:10])
	}
	if r, w, _, _ := stats.Snapshot(); r != 1 || w != 1 {
		t.Errorf("stats = %v", stats)
	}
}

func TestPagerBoundsAndBufferChecks(t *testing.T) {
	p := newTestPager(t, nil)
	buf := make([]byte, PageSize)
	if err := p.ReadPage(0, buf); err == nil {
		t.Errorf("read of unallocated page: want error")
	}
	id := p.Allocate()
	if err := p.ReadPage(id, make([]byte, 10)); err == nil {
		t.Errorf("short buffer: want error")
	}
	if err := p.WritePage(id, make([]byte, 10)); err == nil {
		t.Errorf("short write buffer: want error")
	}
	if err := p.WritePage(id+1, buf); err == nil {
		t.Errorf("write of unallocated page: want error")
	}
}

func TestPagerUnflushedPageReadsZero(t *testing.T) {
	p := newTestPager(t, nil)
	id := p.Allocate()
	buf := make([]byte, PageSize)
	buf[0] = 0xFF
	if err := p.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Errorf("unflushed page should read as zeroes, got %x", buf[0])
	}
}

func TestBufferPoolHitAndEvict(t *testing.T) {
	stats := &Stats{}
	p := newTestPager(t, stats)
	bp := NewBufferPool(2, stats)

	f1, err := bp.NewPage(p)
	if err != nil {
		t.Fatal(err)
	}
	f1.Data[0] = 1
	bp.Unpin(f1, true)
	f2, err := bp.NewPage(p)
	if err != nil {
		t.Fatal(err)
	}
	f2.Data[0] = 2
	bp.Unpin(f2, true)

	// Hit: page 0 still resident.
	g, err := bp.Get(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Data[0] != 1 {
		t.Errorf("page 0 byte = %d", g.Data[0])
	}
	bp.Unpin(g, false)
	if _, _, hits, _ := stats.Snapshot(); hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}

	// Third page forces an eviction (of page 1, LRU) and a writeback.
	f3, err := bp.NewPage(p)
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f3, true)
	if _, _, _, ev := stats.Snapshot(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}

	// Page 1 must come back from disk with its data intact.
	g1, err := bp.Get(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Data[0] != 2 {
		t.Errorf("page 1 byte after reload = %d", g1.Data[0])
	}
	bp.Unpin(g1, false)
}

func TestBufferPoolAllPinned(t *testing.T) {
	p := newTestPager(t, nil)
	bp := NewBufferPool(1, nil)
	f, err := bp.NewPage(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.NewPage(p); err == nil {
		t.Errorf("pool exhausted: want error")
	}
	bp.Unpin(f, false)
	if _, err := bp.NewPage(p); err != nil {
		t.Errorf("after unpin: %v", err)
	}
}

func TestBufferPoolUnpinPanicsWhenUnbalanced(t *testing.T) {
	p := newTestPager(t, nil)
	bp := NewBufferPool(2, nil)
	f, err := bp.NewPage(p)
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Errorf("double unpin did not panic")
		}
	}()
	bp.Unpin(f, false)
}

func TestHeapAppendScanRoundTrip(t *testing.T) {
	m := newManager(t, 8)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		tup := frel.NewTuple(0.5, frel.Crisp(float64(i)), frel.Str(fmt.Sprintf("name-%d", i)))
		if err := h.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumTuples() != n {
		t.Errorf("NumTuples = %d", h.NumTuples())
	}
	if h.NumPages() < 2 {
		t.Errorf("NumPages = %d, want multiple pages", h.NumPages())
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}

	sc := h.Scan()
	defer sc.Close()
	i := 0
	for {
		tup, ok := sc.Next()
		if !ok {
			break
		}
		if tup.Values[0].Num.A != float64(i) || tup.Values[1].Str != fmt.Sprintf("name-%d", i) {
			t.Fatalf("tuple %d = %v", i, tup)
		}
		i++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Errorf("scanned %d tuples, want %d", i, n)
	}
	if m.Pool().PinnedPages() != 0 {
		t.Errorf("pinned pages after scan = %d", m.Pool().PinnedPages())
	}
}

func TestHeapScanColdIsOneReadPerPage(t *testing.T) {
	m := newManager(t, 4)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := h.Append(frel.NewTuple(1, frel.Crisp(float64(i)), frel.Str("x"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	// Read something else to push the heap's pages out.
	other, err := m.CreateHeap("other", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := other.Append(frel.NewTuple(1, frel.Crisp(0), frel.Str("y"))); err != nil {
			t.Fatal(err)
		}
	}
	m.Stats().Reset()
	sc := h.Scan()
	for {
		if _, ok := sc.Next(); !ok {
			break
		}
	}
	sc.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	reads, _, _, _ := m.Stats().Snapshot()
	if reads != h.NumPages() {
		t.Errorf("cold scan reads = %d, want %d (one per page)", reads, h.NumPages())
	}
}

func TestHeapReadAll(t *testing.T) {
	m := newManager(t, 8)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	want := frel.NewRelation(testSchema())
	for i := 0; i < 50; i++ {
		tup := frel.NewTuple(float64(i%10)/10+0.05, frel.Crisp(float64(i)), frel.Str("n"))
		want.Append(tup)
		if err := h.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	got, err := h.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-12) {
		t.Errorf("ReadAll mismatch")
	}
}

func TestHeapRecordTooLarge(t *testing.T) {
	schema := testSchema()
	schema.Pad = PageSize // forces the record over MaxRecordSize
	m := newManager(t, 8)
	h, err := m.CreateHeap("r", schema)
	if err != nil {
		t.Fatal(err)
	}
	err = h.Append(frel.NewTuple(1, frel.Crisp(1), frel.Str("x")))
	if err == nil || !strings.Contains(err.Error(), "max record size") {
		t.Errorf("oversized record: got %v", err)
	}
}

func TestHeapPaddingGrowsPages(t *testing.T) {
	small := testSchema()
	big := testSchema()
	big.Pad = 1024
	m := newManager(t, 64)
	hs, _ := m.CreateHeap("s", small)
	hb, _ := m.CreateHeap("b", big)
	for i := 0; i < 200; i++ {
		tup := frel.NewTuple(1, frel.Crisp(float64(i)), frel.Str("x"))
		if err := hs.Append(tup); err != nil {
			t.Fatal(err)
		}
		if err := hb.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	if hb.NumPages() <= hs.NumPages() {
		t.Errorf("padded heap pages %d, plain %d", hb.NumPages(), hs.NumPages())
	}
}

func TestHeapDrop(t *testing.T) {
	m := newManager(t, 8)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Append(frel.NewTuple(1, frel.Crisp(1), frel.Str("x"))); err != nil {
		t.Fatal(err)
	}
	path := h.Pager().Path()
	if err := h.Drop(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPager(path, m.Stats()); err != nil {
		// Re-creating over the removed path must succeed (file is gone).
		t.Errorf("path not reusable after Drop: %v", err)
	}
}

func TestCreateTempUnique(t *testing.T) {
	m := newManager(t, 8)
	a, err := m.CreateTemp(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.CreateTemp(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if a.Pager().Path() == b.Pager().Path() {
		t.Errorf("temp files share a path: %s", a.Pager().Path())
	}
}

func TestStatsIOAndReset(t *testing.T) {
	s := &Stats{}
	s.Reads.Add(3)
	s.Writes.Add(4)
	if s.IO() != 7 {
		t.Errorf("IO = %d", s.IO())
	}
	s.Reset()
	if s.IO() != 0 {
		t.Errorf("IO after reset = %d", s.IO())
	}
	if !strings.Contains(s.String(), "reads=0") {
		t.Errorf("String = %q", s.String())
	}
}

func TestBufferPoolSetCapacity(t *testing.T) {
	bp := NewBufferPool(10, nil)
	if bp.Capacity() != 10 {
		t.Errorf("Capacity = %d", bp.Capacity())
	}
	bp.SetCapacity(0)
	if bp.Capacity() != 1 {
		t.Errorf("Capacity after SetCapacity(0) = %d, want clamp to 1", bp.Capacity())
	}
}

func TestHeapVersionAndNextBatch(t *testing.T) {
	m := newManager(t, 8)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if h.Version() != 0 {
		t.Fatalf("fresh heap version = %d", h.Version())
	}
	const n = 700
	for i := 0; i < n; i++ {
		tup := frel.NewTuple(0.5, frel.Crisp(float64(i)), frel.Str(fmt.Sprintf("name-%d", i)))
		if err := h.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	if h.Version() != n {
		t.Fatalf("version after %d appends = %d", n, h.Version())
	}

	sc := h.Scan()
	defer sc.Close()
	buf := make([]frel.Tuple, 0, 256)
	i := 0
	for {
		buf = sc.NextBatch(buf)
		if len(buf) == 0 {
			break
		}
		for _, tup := range buf {
			if tup.Values[0].Num.A != float64(i) {
				t.Fatalf("batch tuple %d = %v", i, tup)
			}
			i++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("batched scan saw %d tuples, want %d", i, n)
	}
}
