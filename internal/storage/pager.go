// Package storage implements the paged storage engine underneath the fuzzy
// database: 8 KiB pages (the page size of the paper's testbed, Section 9),
// file-backed pagers, a pinning buffer pool with LRU replacement, and
// append-only heap files of serialized tuples.
//
// All physical I/O is counted in Stats; the experiment harness combines the
// counts with a simulated per-I/O latency to model the paper's 1995 disk
// (see DESIGN.md, "Substitutions").
package storage

import (
	"fmt"
	"os"
	"sync/atomic"
)

// PageSize is the size of a disk page in bytes, matching the 8 K byte
// buffer pages of the paper's experiments.
const PageSize = 8192

// PageID identifies a page within one pager (file).
type PageID int64

// Stats accumulates physical I/O counters. One Stats may be shared by many
// pagers; counters are atomic so concurrent scans can share it.
type Stats struct {
	Reads     atomic.Int64 // physical page reads
	Writes    atomic.Int64 // physical page writes
	Hits      atomic.Int64 // buffer pool hits (no physical read)
	Evictions atomic.Int64 // frames evicted to make room
}

// IO returns the total number of physical page I/Os (reads + writes).
func (s *Stats) IO() int64 {
	return s.Reads.Load() + s.Writes.Load()
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.Reads.Store(0)
	s.Writes.Store(0)
	s.Hits.Store(0)
	s.Evictions.Store(0)
}

// Snapshot returns the current counter values as plain integers.
func (s *Stats) Snapshot() (reads, writes, hits, evictions int64) {
	return s.Reads.Load(), s.Writes.Load(), s.Hits.Load(), s.Evictions.Load()
}

// String renders the counters.
func (s *Stats) String() string {
	r, w, h, e := s.Snapshot()
	return fmt.Sprintf("reads=%d writes=%d hits=%d evictions=%d", r, w, h, e)
}

// Pager provides page-granular access to one file. It performs physical
// I/O and counts it; callers normally go through a BufferPool instead of
// using a Pager directly. The page count is atomic so snapshot readers can
// bound a scan while the single writer allocates or truncates pages.
type Pager struct {
	path  string
	fs    FS
	f     File
	pages atomic.Int64
	stats *Stats
}

// OpenPager creates (or truncates) the file at path on the real file
// system and returns an empty pager over it. stats may be shared across
// pagers; it must not be nil.
func OpenPager(path string, stats *Stats) (*Pager, error) {
	return OpenPagerFS(OsFS{}, path, stats)
}

// OpenPagerFS is OpenPager over an explicit file system.
func OpenPagerFS(fs FS, path string, stats *Stats) (*Pager, error) {
	if stats == nil {
		return nil, fmt.Errorf("storage: OpenPager requires non-nil stats")
	}
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open pager: %w", err)
	}
	return &Pager{path: path, fs: fs, f: f, stats: stats}, nil
}

// OpenPagerExisting opens the file at path on the real file system without
// truncating it, recovering the page count from the file size. The file
// must exist and be page-aligned.
func OpenPagerExisting(path string, stats *Stats) (*Pager, error) {
	return OpenPagerExistingFS(OsFS{}, path, stats)
}

// OpenPagerExistingFS is OpenPagerExisting over an explicit file system.
func OpenPagerExistingFS(fs FS, path string, stats *Stats) (*Pager, error) {
	if stats == nil {
		return nil, fmt.Errorf("storage: OpenPagerExisting requires non-nil stats")
	}
	f, err := fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open existing pager: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat pager: %w", err)
	}
	if size%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: file %s is %d bytes, not page aligned", path, size)
	}
	p := &Pager{path: path, fs: fs, f: f, stats: stats}
	p.pages.Store(size / PageSize)
	return p, nil
}

// NumPages returns the number of allocated pages.
func (p *Pager) NumPages() int64 { return p.pages.Load() }

// Path returns the backing file path.
func (p *Pager) Path() string { return p.path }

// Allocate reserves a new page at the end of the file and returns its ID.
// The page contents are undefined until written.
func (p *Pager) Allocate() PageID {
	return PageID(p.pages.Add(1) - 1)
}

// Reset forgets every allocated page without touching the file, for
// temp-file recycling: the next writer overwrites from page 0, and the
// stale bytes beyond the new high-water mark are unreachable because
// every read is bounded by the page count.
func (p *Pager) Reset() { p.pages.Store(0) }

// Truncate cuts the file back to numPages pages, discarding everything
// beyond. Used by transaction rollback to drop pages appended by the
// aborted transaction; the buffer pool's frames for the cut region must be
// discarded first.
func (p *Pager) Truncate(numPages int64) error {
	if err := p.f.Truncate(numPages * PageSize); err != nil {
		return fmt.Errorf("storage: truncate %s: %w", p.path, err)
	}
	p.pages.Store(numPages)
	return nil
}

// ReadPage reads page id into buf (which must be PageSize bytes long).
func (p *Pager) ReadPage(id PageID, buf []byte) error {
	if n := p.pages.Load(); int64(id) < 0 || int64(id) >= n {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, n)
	}
	if len(buf) != PageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	n, err := p.f.ReadAt(buf, int64(id)*PageSize)
	if err != nil && n < PageSize {
		// A page that was allocated but never flushed reads as zeroes.
		for i := n; i < PageSize; i++ {
			buf[i] = 0
		}
	}
	p.stats.Reads.Add(1)
	return nil
}

// WritePage writes buf (PageSize bytes) to page id.
func (p *Pager) WritePage(id PageID, buf []byte) error {
	if n := p.pages.Load(); int64(id) < 0 || int64(id) >= n {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, n)
	}
	if len(buf) != PageSize {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if _, err := p.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	p.stats.Writes.Add(1)
	return nil
}

// Sync flushes the file's contents to stable storage.
func (p *Pager) Sync() error {
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync %s: %w", p.path, err)
	}
	return nil
}

// Close closes the backing file without removing it.
func (p *Pager) Close() error {
	if p.f == nil {
		return nil
	}
	err := p.f.Close()
	p.f = nil
	return err
}

// Remove closes and deletes the backing file.
func (p *Pager) Remove() error {
	cerr := p.Close()
	rerr := p.fs.Remove(p.path)
	if cerr != nil {
		return cerr
	}
	if rerr != nil && !os.IsNotExist(rerr) {
		return rerr
	}
	return nil
}
