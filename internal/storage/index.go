package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/frel"
)

// Order-index page format. An order index is a heap file whose records are
// not tuples but fixed-size IndexEntry values: the four trapezoid corners
// of one tuple's indexed attribute plus the tuple's position (tid) in the
// base heap. The file reuses the heap page layout (uint16 count, then
// length-prefixed records), so the content-agnostic WAL redo, checkpoint,
// and crash-recovery machinery cover index files with no extra record
// types: an index append is just a heap append of a 40-byte record.
//
// Entries are stored in the stable Definition 3.1 order of the indexed
// attribute — (A, D) ascending with ties in base-heap tid order — so a
// reader obtains the extended merge-join's sort order by a sequential scan
// plus a permutation of the base relation, with no sorting.

// IndexEntrySize is the serialized size of one index entry.
const IndexEntrySize = 40

// IndexEntry is one record of an order index: the corner representation of
// the indexed attribute's possibility distribution and the base-heap
// position of the tuple it came from.
type IndexEntry struct {
	A, B, C, D float64
	Tid        uint64
}

// AppendIndexEntry serializes e onto dst.
func AppendIndexEntry(dst []byte, e IndexEntry) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.A))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.B))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.C))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.D))
	return binary.LittleEndian.AppendUint64(dst, e.Tid)
}

// DecodeIndexEntry deserializes one index entry record.
func DecodeIndexEntry(rec []byte) (IndexEntry, error) {
	if len(rec) != IndexEntrySize {
		return IndexEntry{}, fmt.Errorf("storage: index entry of %d bytes, want %d", len(rec), IndexEntrySize)
	}
	return IndexEntry{
		A:   math.Float64frombits(binary.LittleEndian.Uint64(rec[0:])),
		B:   math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
		C:   math.Float64frombits(binary.LittleEndian.Uint64(rec[16:])),
		D:   math.Float64frombits(binary.LittleEndian.Uint64(rec[24:])),
		Tid: binary.LittleEndian.Uint64(rec[32:]),
	}, nil
}

// IndexEntryFor builds the index entry of tuple t (at base-heap position
// tid) on attribute attr. ok is false when the attribute is not a numeric
// distribution (string attributes have no Definition 3.1 order).
func IndexEntryFor(t frel.Tuple, attr int, tid uint64) (IndexEntry, bool) {
	if attr < 0 || attr >= len(t.Values) || t.Values[attr].Kind != frel.KindNumber {
		return IndexEntry{}, false
	}
	n := t.Values[attr].Num
	return IndexEntry{A: n.A, B: n.B, C: n.C, D: n.D, Tid: tid}, true
}

// CompareEntries orders index entries by the Definition 3.1 interval order
// of the indexed value: support begin, then support end. Ties are left to
// the caller's stable sort, which preserves tid order.
func CompareEntries(a, b IndexEntry) int {
	switch {
	case a.A < b.A:
		return -1
	case a.A > b.A:
		return 1
	case a.D < b.D:
		return -1
	case a.D > b.D:
		return 1
	default:
		return 0
	}
}

// CompareEntriesTotal orders index entries like CompareEntries but breaks
// Definition 3.1 ties by the full corner representation (B, then C),
// mirroring frel.CompareTotal so identical values sort adjacently.
func CompareEntriesTotal(a, b IndexEntry) int {
	if c := CompareEntries(a, b); c != 0 {
		return c
	}
	switch {
	case a.B < b.B:
		return -1
	case a.B > b.B:
		return 1
	case a.C < b.C:
		return -1
	case a.C > b.C:
		return 1
	default:
		return 0
	}
}

// AppendIndexEntry appends one index entry record to the file through the
// regular logged append path.
func (h *HeapFile) AppendIndexEntry(e IndexEntry) error {
	h.buf = AppendIndexEntry(h.buf[:0], e)
	return h.appendRecord(h.buf, nil)
}

// ReadIndexEntries materializes the first limit index entry records of the
// file (limit < 0 reads to the end) — the bounded, snapshot-consistent
// read used when serving an index under MVCC visibility.
func ReadIndexEntries(h *HeapFile, limit int64) ([]IndexEntry, error) {
	n := h.NumTuples()
	if limit >= 0 && limit < n {
		n = limit
	}
	out := make([]IndexEntry, 0, n)
	sc := h.ScanAt(n)
	defer sc.Close()
	for {
		rec, ok := sc.NextRaw()
		if !ok {
			break
		}
		e, err := DecodeIndexEntry(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// IndexSchema returns the placeholder schema an order-index heap is created
// with. Index records are never decoded as tuples; the schema only labels
// the file for recovery and debugging.
func IndexSchema() *frel.Schema {
	return frel.NewSchema("index", frel.Attribute{Name: "ENTRY", Kind: frel.KindNumber})
}
