package storage

import (
	"errors"
	"io"
	"math/bits"
	"os"
	"sync"
	"testing"

	"repro/internal/frel"
)

// walTuple builds the i-th tuple of the deterministic test sequence, with
// a varied membership degree so recovery checks cover degree fidelity.
func walTuple(i int) frel.Tuple {
	return frel.NewTuple(0.125+float64(i%8)/8, frel.Crisp(float64(i)), frel.Str("w"))
}

// walPrefix is the relation holding the first n tuples of the sequence.
func walPrefix(n int) *frel.Relation {
	rel := frel.NewRelation(testSchema())
	for i := 0; i < n; i++ {
		rel.Append(walTuple(i))
	}
	return rel
}

// newWALManager opens a WAL-enabled manager over fs (rooted at "db").
func newWALManager(t *testing.T, fs FS, pages int) *Manager {
	t.Helper()
	m, err := NewManagerOptions("db", ManagerOptions{PoolPages: pages, FS: fs, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// readWAL parses the current log file of fs.
func readWAL(t *testing.T, fs FS) []walRecord {
	t.Helper()
	f, err := fs.OpenFile("db/"+walFileName, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return parseWAL(data)
}

func TestMemFS(t *testing.T) {
	fs := NewMemFS()
	if _, err := fs.OpenFile("d/a", os.O_RDONLY, 0); !os.IsNotExist(err) {
		t.Errorf("missing file: err = %v, want not-exist", err)
	}
	f, err := fs.OpenFile("d/a", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if n, err := f.ReadAt(buf, 0); n != 5 || err != io.EOF {
		t.Errorf("short ReadAt = (%d, %v), want (5, EOF)", n, err)
	}
	if string(buf[:5]) != "hello" {
		t.Errorf("read %q", buf[:5])
	}
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 2 {
		t.Errorf("Size after shrink = %d", sz)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.ReadAt(buf[:4], 0); n != 4 || string(buf[:4]) != "he\x00\x00" {
		t.Errorf("grown file reads %q (%d bytes)", buf[:4], n)
	}
	// Writes past the end grow the file and zero-fill the gap.
	if _, err := f.WriteAt([]byte("z"), 6); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 7 {
		t.Errorf("Size after sparse write = %d", sz)
	}
	if err := fs.Rename("d/a", "d/b"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("d")
	if err != nil || len(names) != 1 || names[0] != "b" {
		t.Errorf("ReadDir = %v, %v", names, err)
	}
	if err := fs.Remove("d/b"); err != nil {
		t.Fatal(err)
	}
	if names, _ := fs.ReadDir("d"); len(names) != 0 {
		t.Errorf("ReadDir after Remove = %v", names)
	}
	if err := fs.Rename("d/b", "d/c"); err == nil {
		t.Errorf("renaming a missing file should fail")
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Errorf("SyncDir: %v", err)
	}
	// O_TRUNC clears existing content.
	if _, err := fs.OpenFile("d/t", os.O_RDWR|os.O_CREATE, 0o644); err != nil {
		t.Fatal(err)
	}
	g, _ := fs.OpenFile("d/t", os.O_RDWR|os.O_CREATE, 0o644)
	g.WriteAt([]byte("xyz"), 0)
	g, _ = fs.OpenFile("d/t", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if sz, _ := g.Size(); sz != 0 {
		t.Errorf("O_TRUNC left %d bytes", sz)
	}
}

func TestWALReplaysCommittedDiscardsUncommitted(t *testing.T) {
	fs := NewMemFS()
	m := newWALManager(t, fs, 8)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // auto-committed appends
		if err := h.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Begin(); err != nil { // uncommitted transaction
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		if err := h.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: drop the manager without commit, checkpoint, or flush. The
	// dirty pages in the buffer pool never reach the heap file.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := newWALManager(t, fs, 8)
	h2, err := m2.OpenHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(walPrefix(3), 0) {
		t.Errorf("recovered %d tuples, want the 3 committed ones", got.Len())
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALCheckpointTruncatesLog(t *testing.T) {
	fs := NewMemFS()
	m := newWALManager(t, fs, 8)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := h.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	recs := readWAL(t, fs)
	if len(recs) != 1 || recs[0].typ != recCheckpoint {
		t.Fatalf("log after checkpoint has %d records, want 1 checkpoint", len(recs))
	}
	if len(recs[0].states) != 1 || recs[0].states[0].name != "r" || recs[0].states[0].numTuples != 10 {
		t.Errorf("checkpoint states = %+v", recs[0].states)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// The truncated log still reopens to the full contents.
	m2 := newWALManager(t, fs, 8)
	h2, err := m2.OpenHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(walPrefix(10), 0) {
		t.Errorf("recovered relation differs after checkpoint+reopen")
	}
}

func TestWALCheckpointRejectsOpenTransaction(t *testing.T) {
	m := newWALManager(t, NewMemFS(), 8)
	if _, err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err == nil {
		t.Errorf("checkpoint inside a transaction should fail")
	}
}

func TestWALCorruptTailDropsSuffixOnly(t *testing.T) {
	fs := NewMemFS()
	m := newWALManager(t, fs, 8)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	var offAfter3 int64
	for i := 0; i < 6; i++ {
		if err := h.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			offAfter3 = m.wal.off
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the record region after the third commit: everything
	// from the corruption on is not durable, everything before it is.
	f, err := fs.OpenFile("db/"+walFileName, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, offAfter3+5); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, offAfter3+5); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := newWALManager(t, fs, 8)
	h2, err := m2.OpenHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(walPrefix(3), 0) {
		t.Errorf("recovered %d tuples, want the 3 before the corruption", got.Len())
	}
}

func TestParseWALStopsAtGarbage(t *testing.T) {
	if recs := parseWAL(nil); len(recs) != 0 {
		t.Errorf("empty log parsed to %d records", len(recs))
	}
	if recs := parseWAL(make([]byte, 200)); len(recs) != 0 {
		t.Errorf("zero log parsed to %d records", len(recs))
	}
	if recs := parseWAL([]byte{1, 2, 3}); len(recs) != 0 {
		t.Errorf("short log parsed to %d records", len(recs))
	}
}

func TestWALNoStealEvictionUnderPressure(t *testing.T) {
	// A pool of 2 pages with a transaction spanning several pages forces
	// eviction of no-steal frames: the pool must sync the log first (the
	// release hook), then steal. The data must survive a reopen.
	fs := NewMemFS()
	m := newWALManager(t, fs, 2)
	h, err := m.CreateHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	const n = 600 // ~4 pages of test tuples
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := h.Append(walTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if h.NumPages() < 3 {
		t.Fatalf("workload fits in the pool (%d pages); raise n", h.NumPages())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := newWALManager(t, fs, 8)
	h2, err := m2.OpenHeap("r", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(walPrefix(n), 0) {
		t.Errorf("recovered relation differs after no-steal eviction")
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	fs := NewMemFS()
	w, err := openWAL(fs, "db", 200_000) // 200µs window
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id, err := w.Begin()
			if err == nil {
				err = w.Append(id, "r", int64(g), []byte{byte(g)})
			}
			if err == nil {
				err = w.Commit(id)
			}
			errs[g] = err
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	recs := readWAL(t, fs)
	var begins, appends, commits int
	seen := make(map[uint64]bool)
	for _, r := range recs {
		switch r.typ {
		case recBegin:
			begins++
			if seen[r.txid] {
				t.Errorf("duplicate txid %d", r.txid)
			}
			seen[r.txid] = true
		case recAppend:
			appends++
		case recCommit:
			commits++
		}
	}
	if begins != writers || appends != writers || commits != writers {
		t.Errorf("log has %d/%d/%d begin/append/commit records, want %d each",
			begins, appends, commits, writers)
	}
}

func TestFaultFSStopAndCounting(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultStop, 2, 1)
	f, err := ffs.OpenFile("x", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("ab"), 0); err != nil { // op 1
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 2), 0); err != nil { // reads don't count
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("cd"), 2); !errors.Is(err, ErrInjectedFault) { // op 2 fires
		t.Fatalf("write 2: err = %v", err)
	}
	if !ffs.Crashed() {
		t.Errorf("Crashed() = false after fault")
	}
	// Everything after the crash fails.
	if _, err := f.WriteAt([]byte("e"), 0); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("post-crash write: %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("post-crash read: %v", err)
	}
	if _, err := f.Size(); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("post-crash size: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("post-crash sync: %v", err)
	}
	if _, err := ffs.OpenFile("y", os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("post-crash open: %v", err)
	}
	if _, err := ffs.ReadDir("."); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("post-crash readdir: %v", err)
	}
	if err := ffs.Remove("x"); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("post-crash remove: %v", err)
	}
	// The failed write never reached the base.
	g, err := mem.OpenFile("x", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := g.Size(); sz != 2 {
		t.Errorf("base file has %d bytes, want 2", sz)
	}
	if got := ffs.Ops(); got != 2 {
		t.Errorf("Ops = %d, want 2", got)
	}
}

func TestFaultFSTorn(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultTorn, 1, 7)
	f, _ := ffs.OpenFile("x", os.O_RDWR|os.O_CREATE, 0o644)
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := f.WriteAt(payload, 0); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("torn write: err = %v", err)
	}
	g, err := mem.OpenFile("x", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := g.Size()
	if sz >= 100 {
		t.Errorf("torn write persisted %d bytes, want a strict prefix", sz)
	}
	buf := make([]byte, sz)
	g.ReadAt(buf, 0)
	for i := range buf {
		if buf[i] != payload[i] {
			t.Errorf("torn prefix differs at byte %d", i)
			break
		}
	}
}

func TestFaultFSFlip(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultFlip, 1, 3)
	f, _ := ffs.OpenFile("x", os.O_RDWR|os.O_CREATE, 0o644)
	payload := []byte("abcdefgh")
	if _, err := f.WriteAt(payload, 0); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("flip write: err = %v", err)
	}
	g, err := mem.OpenFile("x", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		diff += bits.OnesCount8(got[i] ^ payload[i])
	}
	if diff != 1 {
		t.Errorf("flip changed %d bits, want exactly 1", diff)
	}
}

func TestFaultFSDropCrashesAtSync(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultDrop, 1, 1)
	f, _ := ffs.OpenFile("x", os.O_RDWR|os.O_CREATE, 0o644)
	// The dropped write claims success...
	if n, err := f.WriteAt([]byte("lost"), 0); n != 4 || err != nil {
		t.Fatalf("dropped write = (%d, %v), want claimed success", n, err)
	}
	if ffs.Crashed() {
		t.Errorf("crashed before the covering sync")
	}
	// ...later writes still land...
	if _, err := f.WriteAt([]byte("kept"), 4); err != nil {
		t.Fatal(err)
	}
	// ...and the next sync is where the process dies.
	if err := f.Sync(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("sync after drop: err = %v", err)
	}
	if !ffs.Crashed() {
		t.Errorf("Crashed() = false after the covering sync")
	}
	g, err := mem.OpenFile("x", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	g.ReadAt(buf, 0)
	if string(buf[4:]) != "kept" || string(buf[:4]) == "lost" {
		t.Errorf("base content %q: dropped bytes present or later bytes missing", buf)
	}
}

func TestFaultFSMutateOpsDegradeToStop(t *testing.T) {
	for _, mode := range FaultModes {
		mem := NewMemFS()
		mf, _ := mem.OpenFile("a", os.O_CREATE|os.O_RDWR, 0o644)
		mf.WriteAt([]byte("z"), 0)
		ffs := NewFaultFS(mem, mode, 1, 1)
		if err := ffs.Rename("a", "b"); !errors.Is(err, ErrInjectedFault) {
			t.Errorf("%v: rename fault: err = %v", mode, err)
		}
		if _, err := mem.OpenFile("a", os.O_RDONLY, 0); err != nil {
			t.Errorf("%v: rename happened despite the fault", mode)
		}
	}
}

// TestWALCrashMatrix sweeps the full fault matrix over a storage-level
// workload: every mode, at every mutating-I/O injection point, must leave
// a database that recovers to a committed prefix of the workload — at
// least everything acknowledged before the fault, never a torn state.
func TestWALCrashMatrix(t *testing.T) {
	// One committed boundary per entry: after boundary k the relation
	// holds the first boundaries[k] tuples.
	boundaries := []int{0, 1, 2, 3, 4, 5, 6, 12, 13}

	// workload runs the fixed mutation sequence over fs, returning the
	// number of tuples acknowledged as committed before any error.
	workload := func(fs FS) (acked int, err error) {
		m, err := NewManagerOptions("db", ManagerOptions{PoolPages: 4, FS: fs, WAL: true})
		if err != nil {
			return 0, err
		}
		h, err := m.CreateHeap("r", testSchema())
		if err != nil {
			return 0, err
		}
		for i := 0; i < 6; i++ {
			if err := h.Append(walTuple(i)); err != nil {
				return acked, err
			}
			acked = i + 1
		}
		if err := m.Checkpoint(); err != nil {
			return acked, err
		}
		batch := frel.NewRelation(testSchema())
		for i := 6; i < 12; i++ {
			batch.Append(walTuple(i))
		}
		if err := h.AppendAll(batch); err != nil {
			return acked, err
		}
		acked = 12
		tx, err := m.Begin()
		if err != nil {
			return acked, err
		}
		if err := h.Append(walTuple(12)); err != nil {
			return acked, err
		}
		if err := tx.Commit(); err != nil {
			return acked, err
		}
		acked = 13
		return acked, m.Close()
	}

	// Count the workload's injection points with a transparent FaultFS.
	counter := NewFaultFS(NewMemFS(), FaultStop, 0, 1)
	if _, err := workload(counter); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()
	if total < 10 {
		t.Fatalf("workload issues only %d mutating ops; too small to be interesting", total)
	}

	step := int64(1)
	if testing.Short() {
		step = 5
	}
	for _, mode := range FaultModes {
		for n := int64(1); n <= total; n += step {
			mem := NewMemFS()
			ffs := NewFaultFS(mem, mode, n, n*31+int64(mode))
			acked, err := workload(ffs)
			if err == nil && ffs.Crashed() {
				t.Fatalf("%v@%d: workload ignored the injected fault", mode, n)
			}
			if !ffs.Crashed() {
				continue // fault landed after the workload finished
			}

			// Reopen over the pristine base FS, replaying the log.
			m, err := NewManagerOptions("db", ManagerOptions{PoolPages: 8, FS: mem, WAL: true})
			if err != nil {
				t.Fatalf("%v@%d: reopen: %v", mode, n, err)
			}
			got := frel.NewRelation(testSchema())
			if _, err := mem.OpenFile("db/r.heap", os.O_RDONLY, 0); err == nil {
				h, err := m.OpenHeap("r", testSchema())
				if err != nil {
					t.Fatalf("%v@%d: open heap: %v", mode, n, err)
				}
				if got, err = h.ReadAll(); err != nil {
					t.Fatalf("%v@%d: read: %v", mode, n, err)
				}
			}
			ok := false
			for _, b := range boundaries {
				if b >= acked && got.Equal(walPrefix(b), 0) {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%v@%d: recovered %d tuples with %d acked — not a committed prefix ≥ acked",
					mode, n, got.Len(), acked)
			}
			if err := m.Close(); err != nil {
				t.Fatalf("%v@%d: close: %v", mode, n, err)
			}
		}
	}
}

func TestReadHeapStateRejectsCorruptPage(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.OpenFile("db/r.heap", os.O_CREATE|os.O_RDWR, 0o644)
	page := make([]byte, PageSize)
	page[0] = 1 // one record...
	page[2] = 0xFF
	page[3] = 0xFF // ...whose length overruns the page
	f.WriteAt(page, 0)
	if _, err := readHeapState(fs, "db", "r"); err == nil {
		t.Errorf("corrupt page: want error")
	}
	f.Truncate(10) // not page aligned
	if _, err := readHeapState(fs, "db", "r"); err == nil {
		t.Errorf("misaligned heap: want error")
	}
}
