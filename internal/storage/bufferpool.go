package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// frameKey identifies a page across all files sharing the pool.
type frameKey struct {
	pager *Pager
	id    PageID
}

// Frame is a buffered page. Callers obtain frames pinned from the pool,
// read or modify Data, and must Unpin when done (marking the frame dirty if
// modified). Pinned frames are never evicted — the property the extended
// merge-join relies on when it keeps the pages of the current Rng(r) in
// memory (Section 3 of the paper).
//
// A frame may be pinned by several goroutines at once (snapshot readers
// scanning a relation the writer is appending to); Latch arbitrates access
// to Data in that case. Heap scans hold it shared per record, appends hold
// it exclusively per record, so a reader never waits longer than one tuple
// copy.
type Frame struct {
	pager   *Pager
	ID      PageID
	Data    []byte
	Latch   sync.RWMutex // guards Data when a frame is shared across goroutines
	pins    int
	dirty   bool
	nosteal bool          // holds uncommitted data; must not be written out
	elem    *list.Element // position in the LRU list when unpinned
}

// BufferPool caches up to capacity pages across any number of pagers, with
// LRU replacement among unpinned frames. It mirrors the fixed-size main
// memory buffer of the paper's experiments (2 MB = 256 pages).
//
// The pool is safe for concurrent use: a single mutex guards the frame
// table, the LRU list, and pin counts, so the partition workers of a
// parallel merge-join (and parallel sort-run writers) can share one pool.
// Physical page I/O performed on a miss or an eviction happens under the
// lock, serializing disk access exactly like the single disk arm of the
// paper's testbed. Frame.Data of a pinned frame may be read or written
// without the lock — a pinned frame is never evicted or handed to another
// page — but goroutines sharing one pinned frame must take Frame.Latch.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	frames   map[frameKey]*Frame
	lru      *list.List // of *Frame, least recently used in front
	stats    *Stats

	// release, when set, is called (with mu held) if every evictable frame
	// is no-steal: it must make the covering WAL records durable, after
	// which makeRoom clears the no-steal marks and retries. It must not
	// touch the pool.
	release func() error

	// free holds page buffers recycled from evicted frames, capped at
	// capacity. Under pool pressure every admission evicts, so without
	// recycling a scan-heavy query allocates one garbage page buffer per
	// page fetch — the dominant allocation of cold sorts on small pools.
	free [][]byte
}

// NewBufferPool creates a pool with the given page capacity (minimum 1).
func NewBufferPool(capacity int, stats *Stats) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	if stats == nil {
		stats = &Stats{}
	}
	return &BufferPool{
		capacity: capacity,
		frames:   make(map[frameKey]*Frame, capacity),
		lru:      list.New(),
		stats:    stats,
	}
}

// Capacity returns the pool's page capacity.
func (bp *BufferPool) Capacity() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.capacity
}

// SetCapacity changes the pool's page capacity; shrinking takes effect as
// frames are unpinned and evicted on subsequent fetches.
func (bp *BufferPool) SetCapacity(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.capacity = capacity
}

// Stats returns the pool's shared I/O statistics.
func (bp *BufferPool) Stats() *Stats { return bp.stats }

// PinnedPages returns the number of currently pinned frames, for tests and
// leak detection.
func (bp *BufferPool) PinnedPages() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, f := range bp.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

// Get returns the frame of page id in pager p, pinned. It reads the page
// from disk on a miss, evicting the least recently used unpinned frame if
// the pool is full.
func (bp *BufferPool) Get(p *Pager, id PageID) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	key := frameKey{p, id}
	if f, ok := bp.frames[key]; ok {
		bp.stats.Hits.Add(1)
		bp.pin(f)
		return f, nil
	}
	f, err := bp.admit(p, id)
	if err != nil {
		return nil, err
	}
	if err := p.ReadPage(id, f.Data); err != nil {
		bp.discard(f)
		return nil, err
	}
	return f, nil
}

// NewPage allocates a fresh page in pager p and returns it pinned with
// zeroed contents (no physical read).
func (bp *BufferPool) NewPage(p *Pager) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	id := p.Allocate()
	f, err := bp.admit(p, id)
	if err != nil {
		return nil, err
	}
	for i := range f.Data {
		f.Data[i] = 0
	}
	f.dirty = true
	return f, nil
}

// admit makes room for, registers, and pins a new frame for (p, id).
func (bp *BufferPool) admit(p *Pager, id PageID) (*Frame, error) {
	if err := bp.makeRoom(); err != nil {
		return nil, err
	}
	f := &Frame{pager: p, ID: id, Data: bp.pageBuf(), pins: 1}
	bp.frames[frameKey{p, id}] = f
	return f, nil
}

// pageBuf returns a page buffer, recycling one from an evicted frame when
// available. Callers fully initialize the contents (ReadPage on a miss,
// explicit zeroing in NewPage), so stale bytes never leak.
func (bp *BufferPool) pageBuf() []byte {
	if n := len(bp.free); n > 0 {
		b := bp.free[n-1]
		bp.free = bp.free[:n-1]
		return b
	}
	return make([]byte, PageSize)
}

func (bp *BufferPool) makeRoom() error {
	released := false
	for len(bp.frames) >= bp.capacity {
		var victim *Frame
		for e := bp.lru.Front(); e != nil; e = e.Next() {
			if f := e.Value.(*Frame); !f.nosteal {
				victim = f
				break
			}
		}
		if victim == nil {
			if bp.lru.Len() == 0 {
				return fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", len(bp.frames))
			}
			// Every unpinned frame holds uncommitted data. Force the WAL
			// out so writing them respects the WAL-ahead invariant, then
			// steal normally.
			if bp.release == nil || released {
				return fmt.Errorf("storage: buffer pool exhausted: all unpinned frames are no-steal")
			}
			if err := bp.release(); err != nil {
				return err
			}
			for _, f := range bp.frames {
				f.nosteal = false
			}
			released = true
			continue
		}
		if err := bp.evict(victim); err != nil {
			return err
		}
	}
	return nil
}

// SetRelease installs the callback makeRoom invokes when pool pressure
// requires writing no-steal frames; see the field comment.
func (bp *BufferPool) SetRelease(fn func() error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.release = fn
}

// MarkNoSteal flags f (which the caller holds pinned) as carrying
// uncommitted data: it is skipped by eviction until ClearNoSteal.
func (bp *BufferPool) MarkNoSteal(f *Frame) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f.nosteal = true
}

// ClearNoSteal drops every no-steal mark; called once the WAL records
// covering the marked frames are durable (commit or checkpoint).
func (bp *BufferPool) ClearNoSteal() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		f.nosteal = false
	}
}

func (bp *BufferPool) evict(f *Frame) error {
	if f.dirty {
		if err := f.pager.WritePage(f.ID, f.Data); err != nil {
			return err
		}
		f.dirty = false
	}
	bp.discard(f)
	bp.stats.Evictions.Add(1)
	return nil
}

func (bp *BufferPool) discard(f *Frame) {
	if f.elem != nil {
		bp.lru.Remove(f.elem)
		f.elem = nil
	}
	delete(bp.frames, frameKey{f.pager, f.ID})
	// Frames are only discarded unpinned (or by the admitting caller on a
	// read error), and the pin contract forbids touching Data afterwards,
	// so the buffer can be recycled for the next admission.
	if f.Data != nil && len(bp.free) < bp.capacity {
		bp.free = append(bp.free, f.Data)
	}
	f.Data = nil
}

func (bp *BufferPool) pin(f *Frame) {
	if f.elem != nil {
		bp.lru.Remove(f.elem)
		f.elem = nil
	}
	f.pins++
}

// Unpin releases one pin on f; dirty marks the frame as modified so it is
// written back before eviction. It panics on unbalanced unpins.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned frame %d", f.ID))
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins == 0 {
		f.elem = bp.lru.PushBack(f)
	}
}

// FlushAll writes every dirty frame back to its pager. Pins are left
// untouched.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if f.dirty {
			if err := f.pager.WritePage(f.ID, f.Data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// DiscardPagesFrom forgets every frame of p with ID >= from without
// writing it back, used by transaction rollback to drop pages the aborted
// transaction appended (their contents must never reach the disk image
// the pager is about to truncate away). Frames in the cut must be
// unpinned: rollback runs with no reader inside the rolled-back region,
// since snapshot scans never exceed the committed bound.
func (bp *BufferPool) DiscardPagesFrom(p *Pager, from PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for key, f := range bp.frames {
		if key.pager != p || key.id < from {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("storage: DiscardPagesFrom: page %d still pinned", f.ID)
		}
		bp.discard(f)
	}
	return nil
}

// DiscardPager forgets every frame belonging to p without writing dirty
// frames back, for files about to be removed or recycled: flushing a
// dropped temp's dirty pages would be pure wasted I/O. Frames of p must
// be unpinned.
func (bp *BufferPool) DiscardPager(p *Pager) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for key, f := range bp.frames {
		if key.pager != p {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("storage: DiscardPager: page %d still pinned", f.ID)
		}
		bp.discard(f)
	}
	return nil
}

// DropPager flushes and forgets every frame belonging to p, e.g. before
// removing a temporary file. Frames of p must be unpinned.
func (bp *BufferPool) DropPager(p *Pager) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for key, f := range bp.frames {
		if key.pager != p {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("storage: DropPager: page %d still pinned", f.ID)
		}
		if f.dirty {
			if err := p.WritePage(f.ID, f.Data); err != nil {
				return err
			}
		}
		bp.discard(f)
	}
	return nil
}
