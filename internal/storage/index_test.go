package storage

import (
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

func TestIndexEntryRoundTrip(t *testing.T) {
	e := IndexEntry{A: -3.5, B: -1, C: 2, D: 7.25, Tid: 42}
	rec := AppendIndexEntry(nil, e)
	if len(rec) != IndexEntrySize {
		t.Fatalf("encoded %d bytes, want %d", len(rec), IndexEntrySize)
	}
	got, err := DecodeIndexEntry(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("round trip: got %+v want %+v", got, e)
	}
	if _, err := DecodeIndexEntry(rec[:10]); err == nil {
		t.Errorf("short record: want error")
	}
}

func TestIndexEntryFor(t *testing.T) {
	tup := frel.Tuple{
		Values: []frel.Value{frel.Num(fuzzy.Trap(1, 2, 3, 4)), frel.Str("x")},
		D:      1,
	}
	e, ok := IndexEntryFor(tup, 0, 7)
	if !ok {
		t.Fatal("numeric attribute: want ok")
	}
	if e != (IndexEntry{A: 1, B: 2, C: 3, D: 4, Tid: 7}) {
		t.Errorf("entry = %+v", e)
	}
	if _, ok := IndexEntryFor(tup, 1, 0); ok {
		t.Errorf("string attribute: want !ok")
	}
	if _, ok := IndexEntryFor(tup, 5, 0); ok {
		t.Errorf("out of range attribute: want !ok")
	}
}

func TestCompareEntries(t *testing.T) {
	a := IndexEntry{A: 1, B: 1, C: 2, D: 4}
	b := IndexEntry{A: 1, B: 2, C: 2, D: 4}
	c := IndexEntry{A: 1, B: 1, C: 1, D: 5}
	if CompareEntries(a, b) != 0 {
		t.Errorf("Definition 3.1 order must ignore B and C")
	}
	if CompareEntriesTotal(a, b) >= 0 {
		t.Errorf("total order must break ties by B")
	}
	if CompareEntries(a, c) >= 0 || CompareEntries(c, a) <= 0 {
		t.Errorf("support end must order entries with equal begin")
	}
}

func TestIndexHeapAppendAndScan(t *testing.T) {
	m := newManager(t, 8)
	h, err := m.CreateHeap("idx-r-x", IndexSchema())
	if err != nil {
		t.Fatal(err)
	}
	// Enough entries to span multiple pages (40-byte records, 4 KiB pages).
	const n = 500
	for i := 0; i < n; i++ {
		e := IndexEntry{A: float64(i), B: float64(i), C: float64(i), D: float64(i + 1), Tid: uint64(i)}
		if err := h.AppendIndexEntry(e); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 2 {
		t.Fatalf("want multiple pages, got %d", h.NumPages())
	}
	all, err := ReadIndexEntries(h, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Fatalf("read %d entries, want %d", len(all), n)
	}
	for i, e := range all {
		if e.Tid != uint64(i) || e.A != float64(i) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	some, err := ReadIndexEntries(h, 123)
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 123 {
		t.Errorf("bounded read returned %d entries, want 123", len(some))
	}
}

func TestIndexHeapSurvivesRecovery(t *testing.T) {
	fs := NewMemFS()
	dir := "db"
	m, err := NewManagerOptions(dir, ManagerOptions{PoolPages: 8, FS: fs, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.CreateHeap("idx-r-x", IndexSchema())
	if err != nil {
		t.Fatal(err)
	}
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := h.AppendIndexEntry(IndexEntry{A: float64(i), D: float64(i), Tid: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash without checkpoint: reopen replays the log.
	m2, err := NewManagerOptions(dir, ManagerOptions{PoolPages: 8, FS: fs, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := m2.OpenHeap("idx-r-x", IndexSchema())
	if err != nil {
		t.Fatal(err)
	}
	all, err := ReadIndexEntries(h2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Fatalf("recovered %d entries, want 10", len(all))
	}
	for i, e := range all {
		if e.Tid != uint64(i) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
}
