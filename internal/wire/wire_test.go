package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// roundTrip frames m, reads it back, and decodes it.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("Write(%s): %v", m.Type(), err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("ReadMessage(%s): %v", m.Type(), err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%s: %d bytes left after one message", m.Type(), buf.Len())
	}
	return got
}

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&Hello{Version: 1, Client: "fuzzyload/0.1"},
		&HelloOK{Version: 1, Server: "fuzzydbd"},
		&Query{SQL: "SELECT F.NAME FROM F", FetchSize: 128},
		&Query{SQL: ""},
		&Exec{SQL: "CREATE TABLE T (X NUMBER); INSERT INTO T VALUES (1);"},
		&Parse{SQL: "SELECT F.NAME FROM F WHERE F.AGE > ?"},
		&ParseOK{Stmt: 7, NumParams: 2, IsQuery: true},
		&ParseOK{Stmt: 8},
		&BindExec{Stmt: 7, Args: []Arg{NumArg(25), StrArg("young"), StrArg("")}, FetchSize: 64},
		&BindExec{Stmt: 9},
		&Fetch{Cursor: 3, MaxRows: 500},
		&CloseStmt{Stmt: 7},
		&Checkpoint{},
		&Quit{},
		&RowHeader{Cursor: 3, Columns: []string{"F.NAME", "F.AGE"}},
		&RowHeader{Cursor: 0, Columns: []string{}},
		&RowBatch{Cursor: 3, More: true, Rows: []Row{
			{Degree: 0.7, Values: []string{"Ann", "TRAP(30,35,35,40)"}},
			{Degree: 1, Values: []string{"Betty", "25"}},
		}},
		&RowBatch{Cursor: 3},
		&Done{Statements: 4},
		&Error{Code: 2, Msg: "fsql: unexpected token"},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("%s round trip:\n got %#v\nwant %#v", m.Type(), got, m)
		}
	}
}

// normalize maps nil and empty slices onto each other for comparison
// (the codec does not distinguish them).
func normalize(m Message) Message {
	switch v := m.(type) {
	case *RowHeader:
		if len(v.Columns) == 0 {
			return &RowHeader{Cursor: v.Cursor}
		}
	case *BindExec:
		if len(v.Args) == 0 {
			return &BindExec{Stmt: v.Stmt, FetchSize: v.FetchSize}
		}
	case *RowBatch:
		if len(v.Rows) == 0 {
			return &RowBatch{Cursor: v.Cursor, More: v.More}
		}
	}
	return m
}

func TestTypeStrings(t *testing.T) {
	for _, typ := range []Type{
		TypeHello, TypeQuery, TypeParse, TypeBindExec, TypeFetch, TypeCloseStmt,
		TypeCheckpoint, TypeQuit, TypeExec, TypeHelloOK, TypeParseOK,
		TypeRowHeader, TypeRowBatch, TypeDone, TypeError,
	} {
		if s := typ.String(); strings.HasPrefix(s, "Type(") {
			t.Errorf("type 0x%02x has no name", byte(typ))
		}
	}
	if Type(0x42).String() != "Type(0x42)" {
		t.Error("unknown type misrenders")
	}
}

// TestTruncatedFrames cuts a valid frame at every byte boundary: each
// prefix must fail with ErrUnexpectedEOF (or cleanly with io.EOF at
// length zero), never succeed or hang.
func TestTruncatedFrames(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &RowBatch{Cursor: 1, Rows: []Row{{Degree: 0.5, Values: []string{"x"}}}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]))
		if cut == 0 {
			if err != io.EOF {
				t.Errorf("cut=0: err = %v, want io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut=%d: err = %v, want unexpected EOF", cut, err)
		}
	}
}

// TestTruncatedPayloads checks that every decoder survives payloads cut
// at arbitrary points: an error, never a panic or bogus success.
func TestTruncatedPayloads(t *testing.T) {
	msgs := []Message{
		&Hello{Version: 1, Client: "c"},
		&Query{SQL: "SELECT", FetchSize: 9},
		&ParseOK{Stmt: 1, NumParams: 2, IsQuery: true},
		&BindExec{Stmt: 1, Args: []Arg{NumArg(1), StrArg("s")}, FetchSize: 3},
		&RowHeader{Cursor: 1, Columns: []string{"A", "B"}},
		&RowBatch{Cursor: 1, More: true, Rows: []Row{{Degree: 1, Values: []string{"v"}}}},
		&Error{Code: 4, Msg: "boom"},
	}
	for _, m := range msgs {
		var b builder
		m.encode(&b)
		for cut := 0; cut < len(b.buf); cut++ {
			if _, err := Decode(m.Type(), b.buf[:cut]); err == nil {
				t.Errorf("%s: decode of %d/%d bytes succeeded", m.Type(), cut, len(b.buf))
			}
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	var b builder
	(&Hello{Version: 1, Client: "c"}).encode(&b)
	if _, err := Decode(TypeHello, append(b.buf, 0xff)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	if _, err := Decode(Type(0x7f), nil); err == nil {
		t.Error("unknown type accepted")
	}
}

// TestOversizedFrameRejected checks both directions: writing a payload
// over the limit fails, and a length prefix over the limit is rejected
// before any allocation.
func TestOversizedFrameRejected(t *testing.T) {
	if err := WriteFrame(io.Discard, TypeExec, make([]byte, MaxPayload+1)); err == nil {
		t.Error("oversized write accepted")
	}
	hdr := []byte{byte(TypeExec)}
	hdr = binary.AppendUvarint(hdr, MaxPayload+1)
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("oversized length prefix accepted")
	}
}

// TestHostileCounts feeds element counts that vastly exceed the payload:
// the decoders must reject them without allocating gigabytes.
func TestHostileCounts(t *testing.T) {
	// RowBatch claiming 2^40 rows in a 10-byte payload.
	var b builder
	b.uvarint(1)       // cursor
	b.byte(0)          // more
	b.uvarint(1 << 40) // rows
	if _, err := Decode(TypeRowBatch, b.buf); err == nil {
		t.Error("hostile row count accepted")
	}
	// RowHeader claiming 2^40 columns.
	b = builder{}
	b.uvarint(1)
	b.uvarint(1 << 40)
	if _, err := Decode(TypeRowHeader, b.buf); err == nil {
		t.Error("hostile column count accepted")
	}
	// BindExec claiming 2^40 args.
	b = builder{}
	b.uvarint(1)
	b.uvarint(1 << 40)
	if _, err := Decode(TypeBindExec, b.buf); err == nil {
		t.Error("hostile arg count accepted")
	}
}

func TestFrameLevelRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeQuit, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil || typ != TypeQuit || len(payload) != 0 {
		t.Fatalf("ReadFrame = %v %v %v", typ, payload, err)
	}
}
