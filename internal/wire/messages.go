package wire

import (
	"fmt"
	"io"
)

// Message is one protocol message; Write frames and sends it.
type Message interface {
	// Type returns the frame type the message travels as.
	Type() Type
	// encode appends the payload.
	encode(b *builder)
}

// Write frames m and writes it to w.
func Write(w io.Writer, m Message) error {
	var b builder
	m.encode(&b)
	return WriteFrame(w, m.Type(), b.buf)
}

// Decode parses the payload of a frame of the given type.
func Decode(t Type, payload []byte) (Message, error) {
	var m interface {
		Message
		decode(r *reader)
	}
	switch t {
	case TypeHello:
		m = &Hello{}
	case TypeQuery:
		m = &Query{}
	case TypeParse:
		m = &Parse{}
	case TypeBindExec:
		m = &BindExec{}
	case TypeFetch:
		m = &Fetch{}
	case TypeCloseStmt:
		m = &CloseStmt{}
	case TypeCheckpoint:
		m = &Checkpoint{}
	case TypeQuit:
		m = &Quit{}
	case TypeExec:
		m = &Exec{}
	case TypeHelloOK:
		m = &HelloOK{}
	case TypeParseOK:
		m = &ParseOK{}
	case TypeRowHeader:
		m = &RowHeader{}
	case TypeRowBatch:
		m = &RowBatch{}
	case TypeDone:
		m = &Done{}
	case TypeError:
		m = &Error{}
	default:
		return nil, fmt.Errorf("wire: unknown message type 0x%02x", byte(t))
	}
	r := &reader{buf: payload}
	m.decode(r)
	if err := r.done(t); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadMessage reads one frame and decodes it.
func ReadMessage(r io.Reader) (Message, error) {
	t, payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return Decode(t, payload)
}

// Hello opens a connection.
type Hello struct {
	Version uint32 // protocol version the client speaks
	Client  string // client software name, for the server's log
}

func (*Hello) Type() Type { return TypeHello }
func (m *Hello) encode(b *builder) {
	b.uvarint(uint64(m.Version))
	b.string(m.Client)
}
func (m *Hello) decode(r *reader) {
	m.Version = uint32(r.uvarint("Hello.Version"))
	m.Client = r.string("Hello.Client")
}

// HelloOK acknowledges Hello.
type HelloOK struct {
	Version uint32 // protocol version the server speaks
	Server  string // server software name
}

func (*HelloOK) Type() Type { return TypeHelloOK }
func (m *HelloOK) encode(b *builder) {
	b.uvarint(uint64(m.Version))
	b.string(m.Server)
}
func (m *HelloOK) decode(r *reader) {
	m.Version = uint32(r.uvarint("HelloOK.Version"))
	m.Server = r.string("HelloOK.Server")
}

// Query evaluates one SELECT. FetchSize 0 streams the whole answer in
// RowBatch frames ending with one whose More is false; FetchSize > 0
// suspends after that many rows — the cursor id arrives in RowHeader and
// the client pulls the rest with Fetch.
type Query struct {
	SQL       string
	FetchSize uint32
}

func (*Query) Type() Type { return TypeQuery }
func (m *Query) encode(b *builder) {
	b.string(m.SQL)
	b.uvarint(uint64(m.FetchSize))
}
func (m *Query) decode(r *reader) {
	m.SQL = r.string("Query.SQL")
	m.FetchSize = uint32(r.uvarint("Query.FetchSize"))
}

// Exec runs a Fuzzy SQL script, discarding query answers; Done replies.
type Exec struct {
	SQL string
}

func (*Exec) Type() Type          { return TypeExec }
func (m *Exec) encode(b *builder) { b.string(m.SQL) }
func (m *Exec) decode(r *reader)  { m.SQL = r.string("Exec.SQL") }

// Parse prepares one statement; ParseOK replies with its handle.
type Parse struct {
	SQL string
}

func (*Parse) Type() Type          { return TypeParse }
func (m *Parse) encode(b *builder) { b.string(m.SQL) }
func (m *Parse) decode(r *reader)  { m.SQL = r.string("Parse.SQL") }

// ParseOK returns a prepared statement's server-side handle.
type ParseOK struct {
	Stmt      uint32 // handle for BindExec/CloseStmt
	NumParams uint32 // number of '?' parameters
	IsQuery   bool   // whether execution returns rows
}

func (*ParseOK) Type() Type { return TypeParseOK }
func (m *ParseOK) encode(b *builder) {
	b.uvarint(uint64(m.Stmt))
	b.uvarint(uint64(m.NumParams))
	if m.IsQuery {
		b.byte(1)
	} else {
		b.byte(0)
	}
}
func (m *ParseOK) decode(r *reader) {
	m.Stmt = uint32(r.uvarint("ParseOK.Stmt"))
	m.NumParams = uint32(r.uvarint("ParseOK.NumParams"))
	m.IsQuery = r.byte("ParseOK.IsQuery") != 0
}

// Arg is one bound argument of BindExec: a crisp number or a string
// (strings naming linguistic terms resolve server-side as usual).
type Arg struct {
	IsNum bool
	Num   float64
	Str   string
}

// NumArg builds a numeric argument.
func NumArg(v float64) Arg { return Arg{IsNum: true, Num: v} }

// StrArg builds a string argument.
func StrArg(s string) Arg { return Arg{Str: s} }

// BindExec executes a prepared statement. For queries, FetchSize acts as
// in Query; for other statements the reply is Done.
type BindExec struct {
	Stmt      uint32
	Args      []Arg
	FetchSize uint32
}

func (*BindExec) Type() Type { return TypeBindExec }
func (m *BindExec) encode(b *builder) {
	b.uvarint(uint64(m.Stmt))
	b.uvarint(uint64(len(m.Args)))
	for _, a := range m.Args {
		if a.IsNum {
			b.byte(1)
			b.float(a.Num)
		} else {
			b.byte(0)
			b.string(a.Str)
		}
	}
	b.uvarint(uint64(m.FetchSize))
}
func (m *BindExec) decode(r *reader) {
	m.Stmt = uint32(r.uvarint("BindExec.Stmt"))
	n := r.uvarint("BindExec.Args")
	if r.err != nil {
		return
	}
	if n > uint64(len(r.buf)) { // each argument costs at least one tag byte
		r.fail("BindExec.Args")
		return
	}
	m.Args = make([]Arg, n)
	for i := range m.Args {
		if r.byte("BindExec.Arg.tag") == 1 {
			m.Args[i] = NumArg(r.float("BindExec.Arg.num"))
		} else {
			m.Args[i] = StrArg(r.string("BindExec.Arg.str"))
		}
	}
	m.FetchSize = uint32(r.uvarint("BindExec.FetchSize"))
}

// Fetch pulls up to MaxRows more rows from a suspended cursor; MaxRows 0
// drains it.
type Fetch struct {
	Cursor  uint32
	MaxRows uint32
}

func (*Fetch) Type() Type { return TypeFetch }
func (m *Fetch) encode(b *builder) {
	b.uvarint(uint64(m.Cursor))
	b.uvarint(uint64(m.MaxRows))
}
func (m *Fetch) decode(r *reader) {
	m.Cursor = uint32(r.uvarint("Fetch.Cursor"))
	m.MaxRows = uint32(r.uvarint("Fetch.MaxRows"))
}

// CloseStmt releases a prepared statement; Done replies.
type CloseStmt struct {
	Stmt uint32
}

func (*CloseStmt) Type() Type          { return TypeCloseStmt }
func (m *CloseStmt) encode(b *builder) { b.uvarint(uint64(m.Stmt)) }
func (m *CloseStmt) decode(r *reader)  { m.Stmt = uint32(r.uvarint("CloseStmt.Stmt")) }

// Checkpoint forces a checkpoint; Done replies.
type Checkpoint struct{}

func (*Checkpoint) Type() Type      { return TypeCheckpoint }
func (*Checkpoint) encode(*builder) {}
func (*Checkpoint) decode(*reader)  {}

// Quit announces an orderly disconnect; the server closes the connection.
type Quit struct{}

func (*Quit) Type() Type      { return TypeQuit }
func (*Quit) encode(*builder) {}
func (*Quit) decode(*reader)  {}

// RowHeader opens an answer stream: the cursor id RowBatch and Fetch
// refer to, and the answer's column names.
type RowHeader struct {
	Cursor  uint32
	Columns []string
}

func (*RowHeader) Type() Type { return TypeRowHeader }
func (m *RowHeader) encode(b *builder) {
	b.uvarint(uint64(m.Cursor))
	b.strings(m.Columns)
}
func (m *RowHeader) decode(r *reader) {
	m.Cursor = uint32(r.uvarint("RowHeader.Cursor"))
	m.Columns = r.strings("RowHeader.Columns")
}

// Row is one answer tuple: its membership degree and rendered values.
type Row struct {
	Degree float64
	Values []string
}

// RowBatch carries a slice of an answer. More reports that the cursor
// stays open server-side (fetch again); the final batch of a stream has
// More false and may be empty.
type RowBatch struct {
	Cursor uint32
	Rows   []Row
	More   bool
}

func (*RowBatch) Type() Type { return TypeRowBatch }
func (m *RowBatch) encode(b *builder) {
	b.uvarint(uint64(m.Cursor))
	if m.More {
		b.byte(1)
	} else {
		b.byte(0)
	}
	b.uvarint(uint64(len(m.Rows)))
	for _, row := range m.Rows {
		b.float(row.Degree)
		b.strings(row.Values)
	}
}
func (m *RowBatch) decode(r *reader) {
	m.Cursor = uint32(r.uvarint("RowBatch.Cursor"))
	m.More = r.byte("RowBatch.More") != 0
	n := r.uvarint("RowBatch.Rows")
	if r.err != nil {
		return
	}
	if n > uint64(len(r.buf))/8 { // each row costs at least its degree
		r.fail("RowBatch.Rows")
		return
	}
	m.Rows = make([]Row, n)
	for i := range m.Rows {
		m.Rows[i].Degree = r.float("RowBatch.Row.degree")
		m.Rows[i].Values = r.strings("RowBatch.Row.values")
	}
}

// Done completes a request that returns no rows.
type Done struct {
	// Statements is how many statements an Exec ran; 0 elsewhere.
	Statements uint32
}

func (*Done) Type() Type          { return TypeDone }
func (m *Done) encode(b *builder) { b.uvarint(uint64(m.Statements)) }
func (m *Done) decode(r *reader)  { m.Statements = uint32(r.uvarint("Done.Statements")) }

// Error reports a failed request: the fuzzydb.ErrorCode as one byte plus
// the message. The connection survives; the client surfaces it as a
// typed *fuzzydb.Error.
type Error struct {
	Code byte
	Msg  string
}

func (*Error) Type() Type { return TypeError }
func (m *Error) encode(b *builder) {
	b.byte(m.Code)
	b.string(m.Msg)
}
func (m *Error) decode(r *reader) {
	m.Code = r.byte("Error.Code")
	m.Msg = r.string("Error.Msg")
}
