// Package wire implements fuzzydbd's client/server protocol: a binary
// framing over any byte stream plus the message codecs both ends share.
//
// A frame is
//
//	type byte | payload length (uvarint) | payload
//
// and every message is one frame. The payload encodings use three
// primitives: unsigned varints, length-prefixed UTF-8 strings, and
// float64s as 8 little-endian bytes of their IEEE 754 bits. Values travel
// as rendered strings (the engine's public API renders answers that way;
// ill-known numbers look like "TRAP(28,30,39,42)"), degrees as float64s.
//
// The package is deliberately dependency-free — both internal/server and
// pkg/client build on it, and nothing here imports the engine. Error
// frames carry the one-byte fuzzydb.ErrorCode values verbatim.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Type identifies a message. Client→server types occupy 0x01..0x7f,
// server→client types 0x81..0xff.
type Type byte

const (
	// TypeHello opens a connection: protocol version + client name.
	TypeHello Type = 0x01
	// TypeQuery evaluates one SELECT, streaming its answer.
	TypeQuery Type = 0x02
	// TypeParse prepares a statement, returning a handle.
	TypeParse Type = 0x03
	// TypeBindExec executes a prepared statement with bound arguments.
	TypeBindExec Type = 0x04
	// TypeFetch asks for the next rows of a suspended cursor.
	TypeFetch Type = 0x05
	// TypeCloseStmt releases a prepared statement.
	TypeCloseStmt Type = 0x06
	// TypeCheckpoint forces a checkpoint (flush heaps, truncate the WAL).
	TypeCheckpoint Type = 0x07
	// TypeQuit announces an orderly disconnect.
	TypeQuit Type = 0x08
	// TypeExec runs a Fuzzy SQL script, discarding query answers.
	TypeExec Type = 0x09

	// TypeHelloOK acknowledges Hello: protocol version + server name.
	TypeHelloOK Type = 0x81
	// TypeParseOK returns a prepared statement's handle and arity.
	TypeParseOK Type = 0x82
	// TypeRowHeader starts an answer: cursor id + column names.
	TypeRowHeader Type = 0x83
	// TypeRowBatch carries answer rows; More marks a suspended cursor.
	TypeRowBatch Type = 0x84
	// TypeDone completes a rowless request (Exec, Checkpoint, CloseStmt).
	TypeDone Type = 0x85
	// TypeError reports a failure: fuzzydb error code + message.
	TypeError Type = 0x86
)

// String names the type for diagnostics.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "Hello"
	case TypeQuery:
		return "Query"
	case TypeParse:
		return "Parse"
	case TypeBindExec:
		return "BindExec"
	case TypeFetch:
		return "Fetch"
	case TypeCloseStmt:
		return "CloseStmt"
	case TypeCheckpoint:
		return "Checkpoint"
	case TypeQuit:
		return "Quit"
	case TypeExec:
		return "Exec"
	case TypeHelloOK:
		return "HelloOK"
	case TypeParseOK:
		return "ParseOK"
	case TypeRowHeader:
		return "RowHeader"
	case TypeRowBatch:
		return "RowBatch"
	case TypeDone:
		return "Done"
	case TypeError:
		return "Error"
	default:
		return fmt.Sprintf("Type(0x%02x)", byte(t))
	}
}

// Version is the protocol version this package implements. Hello carries
// the client's version; the server refuses mismatches.
const Version = 1

// MaxPayload bounds a frame's payload (16 MiB). ReadFrame rejects larger
// length prefixes before allocating, so a corrupt or hostile peer cannot
// balloon memory.
const MaxPayload = 16 << 20

// WriteFrame writes one frame: t, uvarint length, payload.
func WriteFrame(w io.Writer, t Type, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("wire: payload of %d bytes exceeds the %d-byte frame limit", len(payload), MaxPayload)
	}
	hdr := make([]byte, 1, 1+binary.MaxVarintLen32)
	hdr[0] = byte(t)
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame. A stream that ends cleanly between frames
// returns io.EOF; one cut mid-frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (Type, []byte, error) {
	var tb [1]byte
	if _, err := io.ReadFull(r, tb[:]); err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(byteReader{r})
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("wire: frame announces %d bytes, limit is %d", n, MaxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return Type(tb[0]), payload, nil
}

// byteReader adapts an io.Reader for binary.ReadUvarint without pulling
// ahead of the varint (it reads one byte at a time; callers wrap the
// connection in a bufio.Reader so this stays cheap).
type byteReader struct{ r io.Reader }

func (b byteReader) ReadByte() (byte, error) {
	var buf [1]byte
	_, err := io.ReadFull(b.r, buf[:])
	return buf[0], err
}

// builder accumulates a payload.
type builder struct{ buf []byte }

func (b *builder) uvarint(v uint64) { b.buf = binary.AppendUvarint(b.buf, v) }
func (b *builder) byte(v byte)      { b.buf = append(b.buf, v) }
func (b *builder) float(v float64) {
	b.buf = binary.LittleEndian.AppendUint64(b.buf, math.Float64bits(v))
}
func (b *builder) string(s string) { b.uvarint(uint64(len(s))); b.buf = append(b.buf, s...) }
func (b *builder) strings(ss []string) {
	b.uvarint(uint64(len(ss)))
	for _, s := range ss {
		b.string(s)
	}
}

// reader consumes a payload, latching the first error; callers check Err
// (or use the decode helpers, which do) after reading.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated payload reading %s", what)
	}
}

func (r *reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 1 {
		r.fail(what)
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *reader) float(what string) float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	return v
}

func (r *reader) string(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)) < n {
		r.fail(what)
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *reader) strings(what string) []string {
	n := r.uvarint(what)
	if r.err != nil {
		return nil
	}
	// Each element costs at least its 1-byte length prefix, bounding the
	// allocation by the remaining payload.
	if uint64(len(r.buf)) < n {
		r.fail(what)
		return nil
	}
	ss := make([]string, n)
	for i := range ss {
		ss[i] = r.string(what)
	}
	return ss
}

// done returns the latched error, or complains about trailing bytes.
func (r *reader) done(t Type) error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after %s payload", len(r.buf), t)
	}
	return nil
}
