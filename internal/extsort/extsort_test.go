package extsort

import (
	"math/rand"
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/storage"
)

func xSchema() *frel.Schema {
	return frel.NewSchema("R", frel.Attribute{Name: "X", Kind: frel.KindNumber})
}

func fillRandom(t *testing.T, h *storage.HeapFile, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		center := rng.Float64() * 1000
		width := rng.Float64() * 10
		if err := h.Append(frel.NewTuple(1, frel.Num(fuzzy.Tri(center-width, center, center+width)))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSortSmall(t *testing.T) {
	m := storage.NewManager(t.TempDir(), 16)
	src, err := m.CreateHeap("src", xSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{5, 3, 9, 1, 7} {
		if err := src.Append(frel.NewTuple(1, frel.Crisp(v))); err != nil {
			t.Fatal(err)
		}
	}
	less, err := ByAttr(src.Schema, "X")
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := NewSorter(m, 4).Sort(src, less)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tuples != 5 || st.Runs != 1 || st.MergePasses != 0 {
		t.Errorf("stats = %+v", st)
	}
	rel, err := out.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5, 7, 9}
	for i, w := range want {
		if rel.Tuples[i].Values[0].Num.A != w {
			t.Errorf("tuple %d = %v, want %g", i, rel.Tuples[i], w)
		}
	}
}

func TestSortEmpty(t *testing.T) {
	m := storage.NewManager(t.TempDir(), 16)
	src, err := m.CreateHeap("src", xSchema())
	if err != nil {
		t.Fatal(err)
	}
	less, _ := ByAttr(src.Schema, "X")
	out, st, err := NewSorter(m, 4).Sort(src, less)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumTuples() != 0 || st.Tuples != 0 {
		t.Errorf("empty sort produced %d tuples", out.NumTuples())
	}
}

func TestSortExternalMultiRun(t *testing.T) {
	m := storage.NewManager(t.TempDir(), 16)
	src, err := m.CreateHeap("src", xSchema())
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	fillRandom(t, src, n, 42)
	less, _ := ByAttr(src.Schema, "X")
	// Tiny memory: forces many runs and at least one merge pass.
	out, st, err := NewSorter(m, 2).Sort(src, less)
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs < 4 {
		t.Errorf("runs = %d, want several with a 2-page budget", st.Runs)
	}
	if st.MergePasses < 1 {
		t.Errorf("merge passes = %d, want >= 1", st.MergePasses)
	}
	if out.NumTuples() != n {
		t.Errorf("output tuples = %d, want %d", out.NumTuples(), n)
	}
	if pos, err := Check(out, less); err != nil || pos != -1 {
		t.Errorf("output not sorted at %d (err %v)", pos, err)
	}
}

func TestSortMultiPassMerge(t *testing.T) {
	m := storage.NewManager(t.TempDir(), 16)
	src, err := m.CreateHeap("src", xSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, src, 8000, 7)
	less, _ := ByAttr(src.Schema, "X")
	sorter := NewSorter(m, 2) // fan-in 2: log2(runs) passes
	out, st, err := sorter.Sort(src, less)
	if err != nil {
		t.Fatal(err)
	}
	if st.MergePasses < 2 {
		t.Errorf("merge passes = %d, want >= 2 with fan-in 2", st.MergePasses)
	}
	if pos, err := Check(out, less); err != nil || pos != -1 {
		t.Errorf("not sorted at %d (err %v)", pos, err)
	}
}

// TestSortDefinition31Order verifies that the two-level comparison of
// Definition 3.1 is respected: equal begin points order by end points.
func TestSortDefinition31Order(t *testing.T) {
	m := storage.NewManager(t.TempDir(), 16)
	src, err := m.CreateHeap("src", xSchema())
	if err != nil {
		t.Fatal(err)
	}
	ivals := []fuzzy.Trapezoid{
		fuzzy.Interval(30, 35),
		fuzzy.Interval(20, 35),
		fuzzy.Interval(20, 28),
		fuzzy.Interval(20, 30),
	}
	for _, iv := range ivals {
		if err := src.Append(frel.NewTuple(1, frel.Num(iv))); err != nil {
			t.Fatal(err)
		}
	}
	less, _ := ByAttr(src.Schema, "X")
	out, _, err := NewSorter(m, 4).Sort(src, less)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := out.ReadAll()
	want := []fuzzy.Trapezoid{
		fuzzy.Interval(20, 28),
		fuzzy.Interval(20, 30),
		fuzzy.Interval(20, 35),
		fuzzy.Interval(30, 35),
	}
	for i, w := range want {
		if rel.Tuples[i].Values[0].Num != w {
			t.Errorf("tuple %d = %v, want %v", i, rel.Tuples[i].Values[0], w)
		}
	}
}

// TestSortStable: duplicates keep their input order (needed so degrees of
// identical join values are deterministic).
func TestSortStable(t *testing.T) {
	schema := frel.NewSchema("R",
		frel.Attribute{Name: "X", Kind: frel.KindNumber},
		frel.Attribute{Name: "TAG", Kind: frel.KindString},
	)
	m := storage.NewManager(t.TempDir(), 16)
	src, err := m.CreateHeap("src", schema)
	if err != nil {
		t.Fatal(err)
	}
	tags := []string{"a", "b", "c", "d"}
	for _, tag := range tags {
		if err := src.Append(frel.NewTuple(1, frel.Crisp(5), frel.Str(tag))); err != nil {
			t.Fatal(err)
		}
	}
	less, _ := ByAttr(schema, "X")
	out, _, err := NewSorter(m, 4).Sort(src, less)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := out.ReadAll()
	for i, tag := range tags {
		if rel.Tuples[i].Values[1].Str != tag {
			t.Errorf("tuple %d tag = %q, want %q", i, rel.Tuples[i].Values[1].Str, tag)
		}
	}
}

func TestSortPreservesDegreesAndValues(t *testing.T) {
	m := storage.NewManager(t.TempDir(), 16)
	src, err := m.CreateHeap("src", xSchema())
	if err != nil {
		t.Fatal(err)
	}
	want := frel.NewRelation(xSchema())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		tup := frel.NewTuple(rng.Float64()*0.99+0.01, frel.Crisp(rng.Float64()*100))
		want.Append(tup)
		if err := src.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	less, _ := ByAttr(src.Schema, "X")
	out, _, err := NewSorter(m, 2).Sort(src, less)
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-12) {
		t.Errorf("sort changed the multiset of tuples")
	}
}

func TestByAttrUnknown(t *testing.T) {
	if _, err := ByAttr(xSchema(), "NOPE"); err == nil {
		t.Errorf("ByAttr(NOPE): want error")
	}
}

func TestSortRelationInMemory(t *testing.T) {
	r := frel.NewRelation(xSchema())
	for _, v := range []float64{3, 1, 2} {
		r.Append(frel.NewTuple(1, frel.Crisp(v)))
	}
	less, _ := ByAttr(r.Schema, "X")
	comps := SortRelation(r, less)
	if comps <= 0 {
		t.Errorf("comparisons = %d", comps)
	}
	for i, w := range []float64{1, 2, 3} {
		if r.Tuples[i].Values[0].Num.A != w {
			t.Errorf("tuple %d = %v", i, r.Tuples[i])
		}
	}
}

func TestCheckDetectsDisorder(t *testing.T) {
	m := storage.NewManager(t.TempDir(), 16)
	h, err := m.CreateHeap("h", xSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 3, 2} {
		if err := h.Append(frel.NewTuple(1, frel.Crisp(v))); err != nil {
			t.Fatal(err)
		}
	}
	less, _ := ByAttr(h.Schema, "X")
	pos, err := Check(h, less)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 2 {
		t.Errorf("Check = %d, want 2", pos)
	}
}

// TestSortParallelRunGeneration checks that parallel run generation
// produces the identical sorted file and statistics as the serial sorter,
// at several worker counts, including counts above the pool-capacity cap.
func TestSortParallelRunGeneration(t *testing.T) {
	const n = 6000
	mkSrc := func(m *storage.Manager) *storage.HeapFile {
		src, err := m.CreateHeap("src", xSchema())
		if err != nil {
			t.Fatal(err)
		}
		fillRandom(t, src, n, 99)
		return src
	}
	serialMgr := storage.NewManager(t.TempDir(), 16)
	less, _ := ByAttr(xSchema(), "X")
	serialOut, serialSt, err := NewSorter(serialMgr, 2).Sort(mkSrc(serialMgr), less)
	if err != nil {
		t.Fatal(err)
	}
	serialRel, err := serialOut.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 64} {
		m := storage.NewManager(t.TempDir(), 16)
		out, st, err := NewSorter(m, 2).WithParallelism(workers).Sort(mkSrc(m), less)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st != serialSt {
			t.Errorf("workers=%d: stats %+v, serial %+v", workers, st, serialSt)
		}
		rel, err := out.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if !rel.Equal(serialRel, 0) {
			t.Errorf("workers=%d: sorted output differs from serial", workers)
		}
	}
}

// TestWithParallelismClamps verifies the worker cap: never below 1, never
// at or above the buffer-pool capacity (each concurrent run writer pins a
// page transiently).
func TestWithParallelismClamps(t *testing.T) {
	m := storage.NewManager(t.TempDir(), 4)
	s := NewSorter(m, 2)
	if s.WithParallelism(0); s.workers != 1 {
		t.Errorf("workers(0) = %d, want 1", s.workers)
	}
	if s.WithParallelism(100); s.workers != 3 {
		t.Errorf("workers(100) = %d, want pool capacity - 1 = 3", s.workers)
	}
	if s.WithParallelism(2); s.workers != 2 {
		t.Errorf("workers(2) = %d, want 2", s.workers)
	}
}
