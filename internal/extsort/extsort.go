// Package extsort implements a memory-bounded external merge sort over
// heap files of fuzzy tuples. It plays the role of the commercial Opt-Tech
// external sort used in the paper's experiments (Section 9): run generation
// within a caller-specified amount of memory followed by k-way merging.
//
// The extended merge-join sorts relations on the Definition 3.1 interval
// order of the join attribute; as the paper notes (Section 3), comparing
// two tuples may take two comparisons (begin points, then end points), and
// the sort is otherwise a standard O(n log n) external sort. With a memory
// budget comparable to the relation size the sort completes in one merge
// pass (two I/O passes over the data), matching the paper's linear-I/O
// assumption.
package extsort

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/frel"
	"repro/internal/storage"
)

// Less orders tuples; it must be a strict weak ordering.
type Less func(a, b frel.Tuple) bool

// ByAttr returns a Less ordering tuples of the given schema by the named
// attribute under the Definition 3.1 interval order (strings
// lexicographically).
func ByAttr(schema *frel.Schema, attr string) (Less, error) {
	i, err := schema.Resolve(attr)
	if err != nil {
		return nil, err
	}
	return func(a, b frel.Tuple) bool {
		return frel.Compare(a.Values[i], b.Values[i]) < 0
	}, nil
}

// ByAttrTotal is like ByAttr but breaks Definition 3.1 ties by the full
// corner representation (frel.CompareTotal), so tuples with identical
// values end up adjacent — the order the group-aggregate join requires.
func ByAttrTotal(schema *frel.Schema, attr string) (Less, error) {
	i, err := schema.Resolve(attr)
	if err != nil {
		return nil, err
	}
	return func(a, b frel.Tuple) bool {
		return frel.CompareTotal(a.Values[i], b.Values[i]) < 0
	}, nil
}

// Stats reports the work a sort performed.
type Stats struct {
	Tuples      int64 // tuples sorted
	Runs        int   // initial sorted runs generated
	MergePasses int   // k-way merge passes over the data
	Comparisons int64 // calls to Less
	SpillBytes  int64 // tuple bytes written to temporary run files
}

// Sorter sorts heap files with a fixed memory budget.
type Sorter struct {
	mgr      *storage.Manager
	memPages int
	workers  int
}

// NewSorter creates a sorter that uses at most memPages pages worth of
// tuple memory for run generation and memPages-1 fan-in for merging
// (minimum 2 pages).
func NewSorter(mgr *storage.Manager, memPages int) *Sorter {
	if memPages < 2 {
		memPages = 2
	}
	return &Sorter{mgr: mgr, memPages: memPages, workers: 1}
}

// WithParallelism sets the worker count for run generation (sorting and
// writing initial runs): while the input scan stays sequential, up to
// workers full batches are sorted and written to their run files
// concurrently. Each in-flight batch holds its own memory budget, so peak
// tuple memory grows to workers × memPages; the worker count is capped
// below the buffer-pool capacity so concurrent run writers (one transient
// page pin each) can never exhaust the pool. workers <= 1 restores the
// serial behavior.
func (s *Sorter) WithParallelism(workers int) *Sorter {
	if workers < 1 {
		workers = 1
	}
	if cap := s.mgr.Pool().Capacity() - 1; workers > cap {
		workers = cap
	}
	if workers < 1 {
		workers = 1
	}
	s.workers = workers
	return s
}

// Sort sorts src by less into a fresh temporary heap file. src is not
// modified. The returned file is owned by the caller (Drop when done).
func (s *Sorter) Sort(src *storage.HeapFile, less Less) (*storage.HeapFile, Stats, error) {
	return s.SortPrefix(src, -1, less)
}

// SortPrefix is Sort restricted to the first limit tuples of src
// (limit < 0 sorts everything). It lets callers sort a base heap in
// place of a spilled copy — the snapshot bound keeps a reader that
// captured a committed tuple count from sorting rows appended since.
func (s *Sorter) SortPrefix(src *storage.HeapFile, limit int64, less Less) (*storage.HeapFile, Stats, error) {
	var st Stats
	counting := func(a, b frel.Tuple) bool {
		st.Comparisons++
		return less(a, b)
	}

	runs, err := s.makeRuns(src, limit, less, &st)
	if err != nil {
		return nil, st, err
	}
	if len(runs) == 0 {
		out, err := s.mgr.CreateTemp(src.Schema)
		return out, st, err
	}

	fanIn := s.memPages - 1
	if fanIn < 2 {
		fanIn = 2
	}
	for len(runs) > 1 {
		st.MergePasses++
		var next []*storage.HeapFile
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			merged, err := s.mergeRuns(runs[lo:hi], counting, src.Schema, &st)
			if err != nil {
				return nil, st, err
			}
			for _, r := range runs[lo:hi] {
				if derr := r.Drop(); derr != nil {
					return nil, st, derr
				}
			}
			next = append(next, merged)
		}
		runs = next
	}
	return runs[0], st, nil
}

// makeRuns splits src into sorted runs that each fit in the memory budget.
// With parallelism, run sorting and writing overlap the input scan (and
// each other) on a bounded worker pool; run order, contents, and the
// comparison count stay identical to the serial execution because batches
// are cut at the same points and sorted with the same stable sort.
func (s *Sorter) makeRuns(src *storage.HeapFile, limit int64, less Less, st *Stats) ([]*storage.HeapFile, error) {
	budget := s.memPages * storage.PageSize
	var (
		runs        []*storage.HeapFile
		comparisons atomic.Int64
		wg          sync.WaitGroup
		errOnce     sync.Once
		firstErr    error
		sem         = make(chan struct{}, s.workers)
	)
	var batch []frel.Tuple
	batchBytes := 0

	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		// The run file is created here, in scan order, so the run list is
		// deterministic; only sorting and appending move to the worker.
		run, err := s.mgr.CreateTemp(src.Schema)
		if err != nil {
			return err
		}
		runs = append(runs, run)
		st.Runs++
		st.SpillBytes += int64(batchBytes)
		b := batch
		batch = nil
		batchBytes = 0
		sem <- struct{}{} // bound in-flight batches (and their memory)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			var local int64
			sort.SliceStable(b, func(i, j int) bool {
				local++
				return less(b[i], b[j])
			})
			comparisons.Add(local)
			for _, t := range b {
				if err := run.Append(t); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}()
		return nil
	}

	sc := src.ScanAt(limit)
	defer sc.Close()
	var scanErr error
	// Consume the scan a page-sized batch at a time; the per-tuple budget
	// check keeps run boundaries identical to tuple-at-a-time consumption.
	page := make([]frel.Tuple, 0, 256)
scan:
	for {
		page = sc.NextBatch(page)
		if len(page) == 0 {
			break
		}
		for _, t := range page {
			st.Tuples++
			batch = append(batch, t)
			batchBytes += frel.EncodedSize(src.Schema, t)
			if batchBytes >= budget {
				if err := flush(); err != nil {
					scanErr = err
					break scan
				}
			}
		}
	}
	if scanErr == nil {
		scanErr = sc.Err()
	}
	if scanErr == nil {
		scanErr = flush()
	}
	wg.Wait()
	st.Comparisons += comparisons.Load()
	if scanErr == nil {
		scanErr = firstErr
	}
	if scanErr != nil {
		for _, r := range runs {
			r.Drop()
		}
		return nil, scanErr
	}
	return runs, nil
}

// mergeHead is one scanner's current tuple in the merge heap.
type mergeHead struct {
	tuple frel.Tuple
	idx   int
}

type mergeHeap struct {
	heads []mergeHead
	less  Less
}

func (h *mergeHeap) Len() int { return len(h.heads) }
func (h *mergeHeap) Less(i, j int) bool {
	return h.less(h.heads[i].tuple, h.heads[j].tuple)
}
func (h *mergeHeap) Swap(i, j int)      { h.heads[i], h.heads[j] = h.heads[j], h.heads[i] }
func (h *mergeHeap) Push(x interface{}) { h.heads = append(h.heads, x.(mergeHead)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.heads
	n := len(old)
	x := old[n-1]
	h.heads = old[:n-1]
	return x
}

// mergeRuns merges the given sorted runs into one new temporary heap
// file, accounting the rewritten tuple bytes to st.SpillBytes.
func (s *Sorter) mergeRuns(runs []*storage.HeapFile, less Less, schema *frel.Schema, st *Stats) (*storage.HeapFile, error) {
	out, err := s.mgr.CreateTemp(schema)
	if err != nil {
		return nil, err
	}
	scanners := make([]*storage.Scanner, len(runs))
	defer func() {
		for _, sc := range scanners {
			if sc != nil {
				sc.Close()
			}
		}
	}()
	h := &mergeHeap{less: less}
	for i, run := range runs {
		scanners[i] = run.Scan()
		if t, ok := scanners[i].Next(); ok {
			h.heads = append(h.heads, mergeHead{t, i})
		} else if err := scanners[i].Err(); err != nil {
			return nil, err
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		head := heap.Pop(h).(mergeHead)
		if err := out.Append(head.tuple); err != nil {
			return nil, err
		}
		st.SpillBytes += int64(frel.EncodedSize(schema, head.tuple))
		if t, ok := scanners[head.idx].Next(); ok {
			heap.Push(h, mergeHead{t, head.idx})
		} else if err := scanners[head.idx].Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SortRelation sorts an in-memory relation by less, in place, counting
// comparisons like Sort does. It backs the engine's in-memory fast path.
func SortRelation(r *frel.Relation, less Less) int64 {
	var comparisons int64
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		comparisons++
		return less(r.Tuples[i], r.Tuples[j])
	})
	return comparisons
}

// Check verifies that the heap file is sorted by less, returning the first
// out-of-order position or -1. It is a testing aid.
func Check(h *storage.HeapFile, less Less) (int64, error) {
	sc := h.Scan()
	defer sc.Close()
	var prev frel.Tuple
	first := true
	var i int64
	for {
		t, ok := sc.Next()
		if !ok {
			break
		}
		if !first && less(t, prev) {
			return i, nil
		}
		prev, first = t, false
		i++
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return -1, nil
}
